// Video terminal (paper §5.1 and Fig 2).
//
// A terminal primes its buffers, then displays MPEG frames at the nominal
// rate while concurrently requesting subsequent stripe blocks whenever it
// has the memory to buffer them. If the display catches up with the data
// (buffer underrun) the terminal records a *glitch*, stops the display,
// and fully re-primes its buffers before restarting — increasing the
// glitch's duration but making an immediate second glitch unlikely.
//
// Each read request carries a deadline: the simulated time at which the
// first byte of the requested block will be consumed, computed from the
// video's deterministic frame timeline and the terminal's display clock.
// When one video ends the terminal immediately selects another according
// to the popularity distribution (closed system).
//
// Optional behaviours: random pauses (§8.1, Fig 19) and shared starts
// (batching and patching, see client/stream_share.h).

#ifndef SPIFFI_CLIENT_TERMINAL_H_
#define SPIFFI_CLIENT_TERMINAL_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "client/stream_share.h"
#include "fault/state.h"
#include "layout/layout.h"
#include "mpeg/video.h"
#include "obs/quantile_sketch.h"
#include "server/message.h"
#include "server/server.h"
#include "sim/environment.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace spiffi::vod {
class AdmissionController;
}  // namespace spiffi::vod

namespace spiffi::client {

struct TerminalParams {
  std::int64_t memory_bytes = 2 * 1024 * 1024;
  std::int64_t block_bytes = 512 * 1024;
  bool pause_enabled = false;
  double pauses_per_video_mean = 2.0;     // Poisson mean (§8.1: "twice")
  double pause_duration_mean_sec = 120.0; // exponential mean ("2 minutes")
  // Start the FIRST video at a uniformly random playback position, as if
  // the closed system had already been running for hours. This reaches
  // the steady state the paper measures (all terminals active, spread
  // through their movies) without simulating a full video length of
  // warmup. Subsequent videos always start from the beginning.
  bool random_initial_position = true;

  // Visual search (§8.1): subscribers occasionally fast-forward or rewind
  // with a skip-based search that shows `search_show_sec` out of every
  // show+skip seconds of video. Searches start at Poisson-distributed
  // playback positions and last an exponential duration.
  bool search_enabled = false;
  double searches_per_video_mean = 1.0;
  double search_duration_mean_sec = 30.0;
  double search_show_sec = 1.0;
  double search_skip_sec = 7.0;

  // Block-request timeout/retry (ISSUE 9). When retry_budget > 0 every
  // outstanding block request arms a deadline-derived timeout; on
  // expiry the block is re-sent to the first live replica (bounded
  // exponential backoff between attempts), and a timeout whose target
  // node is down triggers a whole-stream session failover instead of
  // per-block retries. 0 keeps the wait-until-glitch behaviour and is
  // bit-identical to it.
  int retry_budget = 0;
  double retry_min_timeout_sec = 0.25;
  double retry_backoff_base_sec = 0.25;
  // Admission control: base delay before a deferred session retries
  // the gate (doubles per consecutive deferral, capped at 16x).
  double admission_defer_sec = 2.0;
};

class Terminal final : public server::MessageSink,
                       public sim::EventHandler,
                       public StreamShareMember {
 public:
  enum class State {
    kIdle,          // constructed, not yet started
    kWaitingStart,  // share-group leader waiting out the batching window
    kPriming,       // filling buffers before (re)starting display
    kPlaying,       // displaying frames
    kPaused,        // user pressed pause
    kSearching,     // skip-based fast-forward/rewind visual search
    kFollowing,     // riding another terminal's shared stream
  };

  // This terminal's part in its current share group, if any. A patcher
  // is kPatcher while its unicast catch-up stream runs and reports
  // kFollower once synced onto the shared stream.
  enum class ShareRole { kNone, kLeader, kFollower, kPatcher };

  struct Stats {
    std::uint64_t glitches = 0;
    std::uint64_t requests_sent = 0;
    std::uint64_t blocks_received = 0;
    std::uint64_t frames_displayed = 0;
    std::uint64_t videos_completed = 0;
    std::uint64_t primes = 0;
    std::uint64_t pauses = 0;
    std::uint64_t searches = 0;
    std::uint64_t patches_started = 0;   // unicast catch-up streams begun
    std::uint64_t patch_syncs = 0;       // catch-ups that reached the group
    std::uint64_t share_promotions = 0;  // follower -> leader handoffs
    std::uint64_t share_disbands = 0;    // groups lost under this member
    std::uint64_t search_segments = 0;      // segments shown during search
    std::uint64_t search_frames = 0;        // frames shown during search
    std::uint64_t stale_replies = 0;        // replies to abandoned streams
    sim::Tally response_time;  // request -> block arrival (seconds)
    sim::Histogram response_histogram;  // same data, for percentiles
    // Same data again in a mergeable <=1% relative-error sketch; the
    // percentiles SimMetrics reports come from here, the histogram is
    // kept as the coarse regression reference.
    obs::QuantileSketch response_sketch;

    // Deadline accounting, measured at block arrival. Slack is
    // deadline - arrival time: positive means the block came early.
    sim::Tally deadline_slack;          // seconds
    sim::Histogram slack_histogram;     // late arrivals land in bucket 0
    obs::QuantileSketch slack_sketch;   // signed: late arrivals negative
    // Late blocks (slack < 0), attributed to the pipeline stage that
    // consumed the largest share of the response time — the terminal's
    // answer to "who caused this glitch risk".
    std::uint64_t late_blocks = 0;
    std::uint64_t late_attrib_network = 0;
    std::uint64_t late_attrib_server_cpu = 0;   // CPU queue + pool stalls
    std::uint64_t late_attrib_disk_queue = 0;
    std::uint64_t late_attrib_disk_service = 0;
    std::uint64_t late_attrib_fault = 0;        // degraded-mode delays

    // Degraded-mode accounting (zero on healthy runs). A block can be
    // redirected at issue (the terminal saw the primary down) and/or
    // re-routed between nodes after arriving at a dead copy.
    std::uint64_t requests_redirected = 0;  // sent to a replica directly
    std::uint64_t blocks_rerouted = 0;      // replies that hopped nodes

    // Resilience accounting (zero when retry_budget == 0).
    std::uint64_t request_retries = 0;    // timed-out blocks re-sent
    std::uint64_t retries_exhausted = 0;  // budget spent, left waiting
    std::uint64_t session_failovers = 0;  // whole-stream migrations
    std::uint64_t duplicate_replies = 0;  // original + retry both landed
  };

  // The terminal schedules its own first start at `start_time`.
  // `share` may be nullptr (no batching/patching); `fault` may be
  // nullptr (no failure awareness — requests always target the primary
  // copy). When `ingress` is set (the terminal's assigned proxy in a
  // two-tier topology) every request goes there instead of being routed
  // to an origin node; the proxy tier handles failover itself.
  // `admission`, when given, gates every session start (and failover
  // re-admission) through the controller; nullptr admits everyone.
  Terminal(sim::Environment* env, int id, const TerminalParams& params,
           hw::Network* network, server::NodeDirectory* server,
           const mpeg::VideoLibrary* library, const layout::Layout* layout,
           sim::Rng rng, sim::SimTime start_time,
           StreamShareManager* share = nullptr,
           const fault::FaultState* fault = nullptr,
           server::MessageSink* ingress = nullptr,
           vod::AdmissionController* admission = nullptr);

  Terminal(const Terminal&) = delete;
  Terminal& operator=(const Terminal&) = delete;

  // Block replies from the server.
  void OnMessage(const server::Message& message) override;
  // Timer events (start, frame ticks, pause end, follower end).
  void OnEvent(std::uint64_t token) override;
  // Share-group handoff callbacks (see StreamShareMember).
  void OnPromotedToLeader(int video) override;
  void OnShareGroupDisbanded(int video) override;

  int id() const { return id_; }
  State state() const { return state_; }
  ShareRole share_role() const { return share_role_; }
  int current_video() const { return video_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  // Buffer occupancy in bytes (arrived and unconsumed); for tests.
  std::int64_t occupied_bytes() const { return occupied_bytes_; }
  std::int64_t inflight_bytes() const { return inflight_bytes_; }

  // --- Interactive controls (§8.1) ---

  // Jumps to an absolute playback position (seconds) within the current
  // video, discarding buffered data and re-priming from there. Valid
  // while playing, paused, or searching.
  void JumpTo(double playback_seconds);

  // Starts a skip-based visual search from the current position: shows
  // `show_sec` of video, skips `skip_sec`, repeating forward or backward
  // for `duration_sec` (or until the video boundary), then resumes normal
  // playback from wherever the search ended. Valid while playing.
  void BeginVisualSearch(bool forward, double show_sec, double skip_sec,
                         double duration_sec);

  // Current playback position in seconds (consumption point).
  double PositionSeconds() const { return ConsumedPlaybackTime(); }

 private:
  // Event tokens. Follow-end tokens additionally carry a generation in
  // the bits above kTokenBits, and retry tokens carry the block index
  // there (see follow_gen_ / OnRetryTimeout); all other tokens fit in
  // the low bits unchanged.
  static constexpr std::uint64_t kStartToken = 1;
  static constexpr std::uint64_t kFrameToken = 2;
  static constexpr std::uint64_t kPauseEndToken = 3;
  static constexpr std::uint64_t kFollowEndToken = 4;
  static constexpr std::uint64_t kSearchFrameToken = 5;
  static constexpr std::uint64_t kRetryToken = 6;
  // Deferred-admission retry: re-enters ChooseNextVideo (and thus the
  // admission gate). Deliberately distinct from kStartToken, whose
  // pending_video_ branch starts an already-arranged stream directly.
  static constexpr std::uint64_t kAdmissionRetryToken = 7;
  static constexpr std::uint64_t kTokenBits = 3;
  static constexpr std::uint64_t kTokenMask = (1u << kTokenBits) - 1;

  void ChooseNextVideo();
  // Begins priming `video` with display starting at `start_frame`.
  void StartVideo(int video, std::int64_t start_frame);
  void IssueRequests();
  void CheckPrimeComplete();
  void BeginDisplay();
  void DisplayFrame();
  void HandleGlitch();
  void FinishVideo();
  void EnterPause();

  // --- Stream sharing internals ---
  // Enters kFollowing until `end_time`, displaying as if playback time 0
  // were at `display_anchor` (group start for mirrors, the patcher's own
  // anchor for patched joins).
  void BeginFollowing(sim::SimTime display_anchor, sim::SimTime end_time);
  // The patch stream's display reached the join offset: drop the
  // unicast stream and ride the shared one.
  void SyncToSharedStream();
  // Leaving the current stream for an interactive action (pause, jump,
  // search): hand leadership off or detach a patcher.
  void DepartSharedGroup();
  // Playback position implied by `follow_anchor_`, clamped to a valid
  // frame of `video`.
  std::int64_t FollowFrameNow(int video) const;

  // Resets the streaming state (buffers, request window, display cursor)
  // to start consuming at `frame` of the current video. Bumps the stream
  // epoch so replies to earlier requests are discarded on arrival.
  void ResetStreamAt(std::int64_t frame);
  // Visual-search internals.
  void StartSearchSegment();
  void EndVisualSearch();
  void DisplaySearchFrame();
  void OnSearchBlock(const server::Message& message);

  // Where to send the request for `block`: the primary copy's node, or
  // the first live replica when faults are active and the primary is
  // down (client-side failover; the server re-routes stale picks).
  layout::BlockLocation RouteForBlock(std::int64_t block);

  // Accounts an arrived block against its pending-request record:
  // response time, deadline slack, lateness attribution, trace span end.
  void RecordArrival(const server::Message& message);
  // Attributes a late block to its dominant pipeline stage. `retry_wait`
  // is the extra time spent waiting out retry timeouts (0 without
  // retries); it is charged to the fault stage.
  void AttributeLateBlock(const server::Message& message, double response,
                          double retry_wait);

  // --- Request timeout/retry internals (retry_budget > 0 only) ---
  // Absolute fire time of the first timeout for a request with this
  // deadline: shortly before the block's consumption point, but never
  // sooner than the minimum timeout from now.
  sim::SimTime FirstRetryFireTime(sim::SimTime deadline) const;
  // Arms (or re-arms) the retry timer of the pending request at `block`.
  void ArmRetryTimer(std::int64_t block, sim::SimTime fire_time);
  // A retry timer fired: re-send to the next live replica, or fail the
  // whole session over when the target node is down.
  void OnRetryTimeout(std::int64_t block);
  // Migrates the whole stream to surviving replicas: re-admission,
  // epoch bump (stale in-flight replies), full re-prime from the
  // consumption point. Happens once per outage by construction — the
  // re-primed requests route to live nodes.
  void SessionFailover();
  void CancelRetryTimers();

  // Absolute time by which `block`'s first byte will be consumed.
  sim::SimTime DeadlineForBlock(std::int64_t block) const;
  // Bytes [0, boundary) have arrived contiguously.
  std::int64_t ContiguousBytes() const;
  std::int64_t BlockBytesAt(std::int64_t block) const;
  double FramesPerSecond() const;
  // Playback time of the consumption point (frame-aligned).
  double ConsumedPlaybackTime() const;

  sim::Environment* env_;
  int id_;
  TerminalParams params_;
  hw::Network* network_;
  server::NodeDirectory* server_;
  const mpeg::VideoLibrary* library_;
  const layout::Layout* layout_;
  sim::Rng rng_;
  StreamShareManager* share_;
  const fault::FaultState* fault_;
  server::MessageSink* ingress_;  // proxy hop; nullptr = flat topology
  vod::AdmissionController* admission_;  // nullptr = admit everyone
  int admission_defer_streak_ = 0;  // consecutive deferrals (backoff)

  State state_ = State::kIdle;
  int video_ = -1;
  int pending_video_ = -1;  // selected, waiting for a delayed start
  const mpeg::Video* vid_ = nullptr;
  std::int64_t num_blocks_ = 0;
  std::int64_t video_bytes_ = 0;

  bool first_video_ = true;

  // Request/arrival tracking. Blocks before first_block_ (the block
  // containing the starting position) are never requested;
  // contiguous_blocks_ counts arrived blocks from first_block_ on.
  std::int64_t first_block_ = 0;
  std::int64_t start_byte_ = 0;  // first byte actually consumed
  std::int64_t next_request_block_ = 0;
  std::int64_t inflight_bytes_ = 0;
  // In-flight request bookkeeping, keyed by block: when it was issued,
  // the deadline it carried, and the open trace span.
  struct PendingRequest {
    sim::SimTime issue_time = 0.0;
    sim::SimTime deadline = sim::kSimTimeMax;
    std::uint64_t trace_id = 0;
    // Retry state (unused when retry_budget == 0).
    int node = -1;          // origin node targeted (-1 via proxy ingress)
    int attempts = 0;       // retries consumed
    sim::SimTime last_send_time = 0.0;  // most recent (re)send
    sim::EventId retry_timer = 0;       // armed timeout, 0 = none
  };
  std::unordered_map<std::int64_t, PendingRequest> issue_time_;
  std::int64_t contiguous_blocks_ = 0;
  std::set<std::int64_t> arrived_out_of_order_;
  std::int64_t occupied_bytes_ = 0;

  // Display state.
  std::int64_t consumed_bytes_ = 0;
  std::int64_t next_frame_ = 0;
  sim::SimTime anchor_ = 0.0;  // sim time of playback time 0 while playing
  sim::SimTime prime_start_ = 0.0;  // when the current prime began (trace)

  // Pauses: upcoming pause positions (playback seconds), descending.
  std::vector<double> pause_at_;
  sim::SimTime pause_end_ = 0.0;
  // A session failover interrupted a pause: when the re-prime completes,
  // return to kPaused (the original kPauseEndToken is still scheduled)
  // instead of starting playback early.
  bool resume_paused_ = false;

  // Stream epoch: bumped whenever buffered/in-flight data is abandoned
  // (video change, jump, search start/end). Sent as the request cookie;
  // replies with a stale cookie are dropped.
  std::uint64_t epoch_ = 0;

  // Stream sharing. share_group_/share_video_ identify the group this
  // terminal belongs to (or leads); follow_anchor_ is the sim time of
  // this member's playback position 0 while kFollowing; follow_gen_
  // invalidates scheduled follow-end events after a promotion or
  // disband pulls the terminal out of kFollowing early. A patch limit
  // >= 0 caps the unicast catch-up stream: requests stop at
  // patch_limit_block_ and the display syncs onto the shared stream at
  // patch_limit_frame_.
  ShareRole share_role_ = ShareRole::kNone;
  std::uint64_t share_group_ = 0;
  int share_video_ = -1;
  sim::SimTime follow_anchor_ = 0.0;
  std::uint64_t follow_gen_ = 0;
  double pending_patch_seconds_ = 0.0;
  std::int64_t patch_limit_frame_ = -1;
  std::int64_t patch_limit_block_ = 0;
  // Blocks this stream will actually request: num_blocks_, or the patch
  // cap while a catch-up stream runs.
  std::int64_t RequestableBlocks() const {
    return patch_limit_frame_ >= 0 ? patch_limit_block_ : num_blocks_;
  }

  // Visual search (§8.1): upcoming search positions per video
  // (descending), and the state of the search in progress.
  std::vector<double> search_at_;
  bool search_forward_ = true;
  double search_show_sec_ = 1.0;
  double search_skip_sec_ = 7.0;
  sim::SimTime search_end_time_ = 0.0;
  std::int64_t search_segment_start_ = 0;  // first frame of the segment
  std::int64_t search_segment_end_ = 0;    // one past the last frame
  std::int64_t search_cursor_ = 0;         // display cursor (frame)
  std::set<std::int64_t> search_blocks_pending_;

  Stats stats_;
};

}  // namespace spiffi::client

#endif  // SPIFFI_CLIENT_TERMINAL_H_
