#include "client/piggyback.h"

namespace spiffi::client {

PiggybackManager::Arrangement PiggybackManager::Arrange(int video) {
  sim::SimTime now = env_->now();
  if (window_sec_ <= 0.0) {
    return Arrangement{Role::kLeader, now};
  }
  auto it = open_groups_.find(video);
  if (it != open_groups_.end() && it->second >= now) {
    ++followers_attached_;
    return Arrangement{Role::kFollower, it->second};
  }
  sim::SimTime start = now + window_sec_;
  open_groups_[video] = start;
  ++groups_formed_;
  return Arrangement{Role::kLeader, start};
}

}  // namespace spiffi::client
