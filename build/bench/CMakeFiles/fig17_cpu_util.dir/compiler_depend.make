# Empty compiler generated dependencies file for fig17_cpu_util.
# This may be replaced when dependencies are built.
