file(REMOVE_RECURSE
  "CMakeFiles/fig17_cpu_util.dir/fig17_cpu_util.cc.o"
  "CMakeFiles/fig17_cpu_util.dir/fig17_cpu_util.cc.o.d"
  "fig17_cpu_util"
  "fig17_cpu_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
