file(REMOVE_RECURSE
  "CMakeFiles/fig11_memory_elevator.dir/fig11_memory_elevator.cc.o"
  "CMakeFiles/fig11_memory_elevator.dir/fig11_memory_elevator.cc.o.d"
  "fig11_memory_elevator"
  "fig11_memory_elevator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_memory_elevator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
