# Empty dependencies file for fig11_memory_elevator.
# This may be replaced when dependencies are built.
