# Empty dependencies file for table3_disk_cost.
# This may be replaced when dependencies are built.
