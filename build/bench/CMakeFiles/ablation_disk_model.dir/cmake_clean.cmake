file(REMOVE_RECURSE
  "CMakeFiles/ablation_disk_model.dir/ablation_disk_model.cc.o"
  "CMakeFiles/ablation_disk_model.dir/ablation_disk_model.cc.o.d"
  "ablation_disk_model"
  "ablation_disk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
