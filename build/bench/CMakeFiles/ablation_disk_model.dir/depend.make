# Empty dependencies file for ablation_disk_model.
# This may be replaced when dependencies are built.
