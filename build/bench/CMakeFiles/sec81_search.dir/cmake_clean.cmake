file(REMOVE_RECURSE
  "CMakeFiles/sec81_search.dir/sec81_search.cc.o"
  "CMakeFiles/sec81_search.dir/sec81_search.cc.o.d"
  "sec81_search"
  "sec81_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec81_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
