# Empty dependencies file for sec81_search.
# This may be replaced when dependencies are built.
