# Empty dependencies file for fig18_network_bw.
# This may be replaced when dependencies are built.
