file(REMOVE_RECURSE
  "CMakeFiles/fig18_network_bw.dir/fig18_network_bw.cc.o"
  "CMakeFiles/fig18_network_bw.dir/fig18_network_bw.cc.o.d"
  "fig18_network_bw"
  "fig18_network_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_network_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
