file(REMOVE_RECURSE
  "CMakeFiles/fig09_glitch_curve.dir/fig09_glitch_curve.cc.o"
  "CMakeFiles/fig09_glitch_curve.dir/fig09_glitch_curve.cc.o.d"
  "fig09_glitch_curve"
  "fig09_glitch_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_glitch_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
