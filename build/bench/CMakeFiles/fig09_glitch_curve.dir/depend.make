# Empty dependencies file for fig09_glitch_curve.
# This may be replaced when dependencies are built.
