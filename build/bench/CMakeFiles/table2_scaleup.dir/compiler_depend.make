# Empty compiler generated dependencies file for table2_scaleup.
# This may be replaced when dependencies are built.
