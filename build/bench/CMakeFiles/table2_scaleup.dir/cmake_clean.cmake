file(REMOVE_RECURSE
  "CMakeFiles/table2_scaleup.dir/table2_scaleup.cc.o"
  "CMakeFiles/table2_scaleup.dir/table2_scaleup.cc.o.d"
  "table2_scaleup"
  "table2_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
