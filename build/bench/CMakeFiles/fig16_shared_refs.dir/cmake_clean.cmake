file(REMOVE_RECURSE
  "CMakeFiles/fig16_shared_refs.dir/fig16_shared_refs.cc.o"
  "CMakeFiles/fig16_shared_refs.dir/fig16_shared_refs.cc.o.d"
  "fig16_shared_refs"
  "fig16_shared_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_shared_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
