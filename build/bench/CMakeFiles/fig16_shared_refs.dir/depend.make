# Empty dependencies file for fig16_shared_refs.
# This may be replaced when dependencies are built.
