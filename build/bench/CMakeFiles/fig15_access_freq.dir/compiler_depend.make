# Empty compiler generated dependencies file for fig15_access_freq.
# This may be replaced when dependencies are built.
