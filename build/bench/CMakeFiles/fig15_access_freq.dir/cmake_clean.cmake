file(REMOVE_RECURSE
  "CMakeFiles/fig15_access_freq.dir/fig15_access_freq.cc.o"
  "CMakeFiles/fig15_access_freq.dir/fig15_access_freq.cc.o.d"
  "fig15_access_freq"
  "fig15_access_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_access_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
