file(REMOVE_RECURSE
  "CMakeFiles/sec82_piggyback.dir/sec82_piggyback.cc.o"
  "CMakeFiles/sec82_piggyback.dir/sec82_piggyback.cc.o.d"
  "sec82_piggyback"
  "sec82_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec82_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
