# Empty dependencies file for sec82_piggyback.
# This may be replaced when dependencies are built.
