file(REMOVE_RECURSE
  "CMakeFiles/ablation_rt_params.dir/ablation_rt_params.cc.o"
  "CMakeFiles/ablation_rt_params.dir/ablation_rt_params.cc.o.d"
  "ablation_rt_params"
  "ablation_rt_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rt_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
