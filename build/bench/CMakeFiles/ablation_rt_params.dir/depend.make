# Empty dependencies file for ablation_rt_params.
# This may be replaced when dependencies are built.
