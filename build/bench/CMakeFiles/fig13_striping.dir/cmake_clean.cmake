file(REMOVE_RECURSE
  "CMakeFiles/fig13_striping.dir/fig13_striping.cc.o"
  "CMakeFiles/fig13_striping.dir/fig13_striping.cc.o.d"
  "fig13_striping"
  "fig13_striping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
