# Empty dependencies file for fig13_striping.
# This may be replaced when dependencies are built.
