# Empty dependencies file for fig08_zipf.
# This may be replaced when dependencies are built.
