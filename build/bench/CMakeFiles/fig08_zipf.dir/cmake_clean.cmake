file(REMOVE_RECURSE
  "CMakeFiles/fig08_zipf.dir/fig08_zipf.cc.o"
  "CMakeFiles/fig08_zipf.dir/fig08_zipf.cc.o.d"
  "fig08_zipf"
  "fig08_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
