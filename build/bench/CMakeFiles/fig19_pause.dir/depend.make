# Empty dependencies file for fig19_pause.
# This may be replaced when dependencies are built.
