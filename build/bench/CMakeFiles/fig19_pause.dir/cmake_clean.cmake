file(REMOVE_RECURSE
  "CMakeFiles/fig19_pause.dir/fig19_pause.cc.o"
  "CMakeFiles/fig19_pause.dir/fig19_pause.cc.o.d"
  "fig19_pause"
  "fig19_pause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_pause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
