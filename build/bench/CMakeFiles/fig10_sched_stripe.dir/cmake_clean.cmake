file(REMOVE_RECURSE
  "CMakeFiles/fig10_sched_stripe.dir/fig10_sched_stripe.cc.o"
  "CMakeFiles/fig10_sched_stripe.dir/fig10_sched_stripe.cc.o.d"
  "fig10_sched_stripe"
  "fig10_sched_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sched_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
