# Empty dependencies file for fig10_sched_stripe.
# This may be replaced when dependencies are built.
