file(REMOVE_RECURSE
  "CMakeFiles/fig12_memory_realtime.dir/fig12_memory_realtime.cc.o"
  "CMakeFiles/fig12_memory_realtime.dir/fig12_memory_realtime.cc.o.d"
  "fig12_memory_realtime"
  "fig12_memory_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memory_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
