file(REMOVE_RECURSE
  "CMakeFiles/fig14_disk_util.dir/fig14_disk_util.cc.o"
  "CMakeFiles/fig14_disk_util.dir/fig14_disk_util.cc.o.d"
  "fig14_disk_util"
  "fig14_disk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_disk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
