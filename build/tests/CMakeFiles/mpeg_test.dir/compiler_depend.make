# Empty compiler generated dependencies file for mpeg_test.
# This may be replaced when dependencies are built.
