file(REMOVE_RECURSE
  "CMakeFiles/mpeg_test.dir/mpeg/frame_model_test.cc.o"
  "CMakeFiles/mpeg_test.dir/mpeg/frame_model_test.cc.o.d"
  "CMakeFiles/mpeg_test.dir/mpeg/mpeg_property_test.cc.o"
  "CMakeFiles/mpeg_test.dir/mpeg/mpeg_property_test.cc.o.d"
  "CMakeFiles/mpeg_test.dir/mpeg/video_test.cc.o"
  "CMakeFiles/mpeg_test.dir/mpeg/video_test.cc.o.d"
  "CMakeFiles/mpeg_test.dir/mpeg/zipf_test.cc.o"
  "CMakeFiles/mpeg_test.dir/mpeg/zipf_test.cc.o.d"
  "mpeg_test"
  "mpeg_test.pdb"
  "mpeg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
