file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/calendar_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/calendar_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/composition_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/composition_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/environment_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/environment_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/histogram_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/histogram_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/mailbox_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/mailbox_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/process_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/process_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/random_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/random_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/resource_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/resource_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/semaphore_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/semaphore_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/stats_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/stats_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/wait_list_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/wait_list_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
