
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/calendar_test.cc" "tests/CMakeFiles/sim_test.dir/sim/calendar_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/calendar_test.cc.o.d"
  "/root/repo/tests/sim/composition_test.cc" "tests/CMakeFiles/sim_test.dir/sim/composition_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/composition_test.cc.o.d"
  "/root/repo/tests/sim/environment_test.cc" "tests/CMakeFiles/sim_test.dir/sim/environment_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/environment_test.cc.o.d"
  "/root/repo/tests/sim/histogram_test.cc" "tests/CMakeFiles/sim_test.dir/sim/histogram_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/histogram_test.cc.o.d"
  "/root/repo/tests/sim/mailbox_test.cc" "tests/CMakeFiles/sim_test.dir/sim/mailbox_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/mailbox_test.cc.o.d"
  "/root/repo/tests/sim/process_test.cc" "tests/CMakeFiles/sim_test.dir/sim/process_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/process_test.cc.o.d"
  "/root/repo/tests/sim/random_test.cc" "tests/CMakeFiles/sim_test.dir/sim/random_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/random_test.cc.o.d"
  "/root/repo/tests/sim/resource_test.cc" "tests/CMakeFiles/sim_test.dir/sim/resource_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/resource_test.cc.o.d"
  "/root/repo/tests/sim/semaphore_test.cc" "tests/CMakeFiles/sim_test.dir/sim/semaphore_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/semaphore_test.cc.o.d"
  "/root/repo/tests/sim/stats_test.cc" "tests/CMakeFiles/sim_test.dir/sim/stats_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/stats_test.cc.o.d"
  "/root/repo/tests/sim/wait_list_test.cc" "tests/CMakeFiles/sim_test.dir/sim/wait_list_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/wait_list_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spiffi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
