
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/server/buffer_pool_test.cc" "tests/CMakeFiles/server_test.dir/server/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/buffer_pool_test.cc.o.d"
  "/root/repo/tests/server/disk_sched_test.cc" "tests/CMakeFiles/server_test.dir/server/disk_sched_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/disk_sched_test.cc.o.d"
  "/root/repo/tests/server/gss_equivalence_test.cc" "tests/CMakeFiles/server_test.dir/server/gss_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/gss_equivalence_test.cc.o.d"
  "/root/repo/tests/server/memory_pressure_test.cc" "tests/CMakeFiles/server_test.dir/server/memory_pressure_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/memory_pressure_test.cc.o.d"
  "/root/repo/tests/server/message_test.cc" "tests/CMakeFiles/server_test.dir/server/message_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/message_test.cc.o.d"
  "/root/repo/tests/server/node_test.cc" "tests/CMakeFiles/server_test.dir/server/node_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/node_test.cc.o.d"
  "/root/repo/tests/server/prefetch_test.cc" "tests/CMakeFiles/server_test.dir/server/prefetch_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/prefetch_test.cc.o.d"
  "/root/repo/tests/server/realtime_e2e_test.cc" "tests/CMakeFiles/server_test.dir/server/realtime_e2e_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/realtime_e2e_test.cc.o.d"
  "/root/repo/tests/server/sched_property_test.cc" "tests/CMakeFiles/server_test.dir/server/sched_property_test.cc.o" "gcc" "tests/CMakeFiles/server_test.dir/server/sched_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spiffi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
