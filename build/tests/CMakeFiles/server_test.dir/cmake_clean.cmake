file(REMOVE_RECURSE
  "CMakeFiles/server_test.dir/server/buffer_pool_test.cc.o"
  "CMakeFiles/server_test.dir/server/buffer_pool_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/disk_sched_test.cc.o"
  "CMakeFiles/server_test.dir/server/disk_sched_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/gss_equivalence_test.cc.o"
  "CMakeFiles/server_test.dir/server/gss_equivalence_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/memory_pressure_test.cc.o"
  "CMakeFiles/server_test.dir/server/memory_pressure_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/message_test.cc.o"
  "CMakeFiles/server_test.dir/server/message_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/node_test.cc.o"
  "CMakeFiles/server_test.dir/server/node_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/prefetch_test.cc.o"
  "CMakeFiles/server_test.dir/server/prefetch_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/realtime_e2e_test.cc.o"
  "CMakeFiles/server_test.dir/server/realtime_e2e_test.cc.o.d"
  "CMakeFiles/server_test.dir/server/sched_property_test.cc.o"
  "CMakeFiles/server_test.dir/server/sched_property_test.cc.o.d"
  "server_test"
  "server_test.pdb"
  "server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
