file(REMOVE_RECURSE
  "CMakeFiles/vod_test.dir/vod/capacity_edge_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/capacity_edge_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/capacity_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/capacity_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/config_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/config_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/paper_claims_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/paper_claims_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/simulation_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/simulation_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/system_property_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/system_property_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/table_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/table_test.cc.o.d"
  "CMakeFiles/vod_test.dir/vod/trace_test.cc.o"
  "CMakeFiles/vod_test.dir/vod/trace_test.cc.o.d"
  "vod_test"
  "vod_test.pdb"
  "vod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
