# Empty compiler generated dependencies file for vod_test.
# This may be replaced when dependencies are built.
