
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vod/capacity_edge_test.cc" "tests/CMakeFiles/vod_test.dir/vod/capacity_edge_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/capacity_edge_test.cc.o.d"
  "/root/repo/tests/vod/capacity_test.cc" "tests/CMakeFiles/vod_test.dir/vod/capacity_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/capacity_test.cc.o.d"
  "/root/repo/tests/vod/config_test.cc" "tests/CMakeFiles/vod_test.dir/vod/config_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/config_test.cc.o.d"
  "/root/repo/tests/vod/paper_claims_test.cc" "tests/CMakeFiles/vod_test.dir/vod/paper_claims_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/paper_claims_test.cc.o.d"
  "/root/repo/tests/vod/simulation_test.cc" "tests/CMakeFiles/vod_test.dir/vod/simulation_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/simulation_test.cc.o.d"
  "/root/repo/tests/vod/system_property_test.cc" "tests/CMakeFiles/vod_test.dir/vod/system_property_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/system_property_test.cc.o.d"
  "/root/repo/tests/vod/table_test.cc" "tests/CMakeFiles/vod_test.dir/vod/table_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/table_test.cc.o.d"
  "/root/repo/tests/vod/trace_test.cc" "tests/CMakeFiles/vod_test.dir/vod/trace_test.cc.o" "gcc" "tests/CMakeFiles/vod_test.dir/vod/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/spiffi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
