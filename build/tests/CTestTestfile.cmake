# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/mpeg_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/vod_test[1]_include.cmake")
