file(REMOVE_RECURSE
  "libspiffi.a"
)
