
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/piggyback.cc" "src/CMakeFiles/spiffi.dir/client/piggyback.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/client/piggyback.cc.o.d"
  "/root/repo/src/client/terminal.cc" "src/CMakeFiles/spiffi.dir/client/terminal.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/client/terminal.cc.o.d"
  "/root/repo/src/hw/cpu.cc" "src/CMakeFiles/spiffi.dir/hw/cpu.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/hw/cpu.cc.o.d"
  "/root/repo/src/hw/disk.cc" "src/CMakeFiles/spiffi.dir/hw/disk.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/hw/disk.cc.o.d"
  "/root/repo/src/hw/network.cc" "src/CMakeFiles/spiffi.dir/hw/network.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/hw/network.cc.o.d"
  "/root/repo/src/layout/nonstriped.cc" "src/CMakeFiles/spiffi.dir/layout/nonstriped.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/layout/nonstriped.cc.o.d"
  "/root/repo/src/layout/striping.cc" "src/CMakeFiles/spiffi.dir/layout/striping.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/layout/striping.cc.o.d"
  "/root/repo/src/mpeg/frame_model.cc" "src/CMakeFiles/spiffi.dir/mpeg/frame_model.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/mpeg/frame_model.cc.o.d"
  "/root/repo/src/mpeg/video.cc" "src/CMakeFiles/spiffi.dir/mpeg/video.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/mpeg/video.cc.o.d"
  "/root/repo/src/mpeg/zipf.cc" "src/CMakeFiles/spiffi.dir/mpeg/zipf.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/mpeg/zipf.cc.o.d"
  "/root/repo/src/server/buffer_pool.cc" "src/CMakeFiles/spiffi.dir/server/buffer_pool.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/server/buffer_pool.cc.o.d"
  "/root/repo/src/server/disk_sched.cc" "src/CMakeFiles/spiffi.dir/server/disk_sched.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/server/disk_sched.cc.o.d"
  "/root/repo/src/server/message.cc" "src/CMakeFiles/spiffi.dir/server/message.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/server/message.cc.o.d"
  "/root/repo/src/server/node.cc" "src/CMakeFiles/spiffi.dir/server/node.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/server/node.cc.o.d"
  "/root/repo/src/server/prefetch.cc" "src/CMakeFiles/spiffi.dir/server/prefetch.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/server/prefetch.cc.o.d"
  "/root/repo/src/server/server.cc" "src/CMakeFiles/spiffi.dir/server/server.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/server/server.cc.o.d"
  "/root/repo/src/sim/calendar.cc" "src/CMakeFiles/spiffi.dir/sim/calendar.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/calendar.cc.o.d"
  "/root/repo/src/sim/environment.cc" "src/CMakeFiles/spiffi.dir/sim/environment.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/environment.cc.o.d"
  "/root/repo/src/sim/histogram.cc" "src/CMakeFiles/spiffi.dir/sim/histogram.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/histogram.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/spiffi.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/CMakeFiles/spiffi.dir/sim/resource.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/resource.cc.o.d"
  "/root/repo/src/sim/semaphore.cc" "src/CMakeFiles/spiffi.dir/sim/semaphore.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/semaphore.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/spiffi.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/sim/stats.cc.o.d"
  "/root/repo/src/vod/capacity.cc" "src/CMakeFiles/spiffi.dir/vod/capacity.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/vod/capacity.cc.o.d"
  "/root/repo/src/vod/config.cc" "src/CMakeFiles/spiffi.dir/vod/config.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/vod/config.cc.o.d"
  "/root/repo/src/vod/simulation.cc" "src/CMakeFiles/spiffi.dir/vod/simulation.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/vod/simulation.cc.o.d"
  "/root/repo/src/vod/table.cc" "src/CMakeFiles/spiffi.dir/vod/table.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/vod/table.cc.o.d"
  "/root/repo/src/vod/trace.cc" "src/CMakeFiles/spiffi.dir/vod/trace.cc.o" "gcc" "src/CMakeFiles/spiffi.dir/vod/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
