# Empty dependencies file for spiffi.
# This may be replaced when dependencies are built.
