file(REMOVE_RECURSE
  "CMakeFiles/interactive_features.dir/interactive_features.cpp.o"
  "CMakeFiles/interactive_features.dir/interactive_features.cpp.o.d"
  "interactive_features"
  "interactive_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
