# Empty dependencies file for interactive_features.
# This may be replaced when dependencies are built.
