#!/usr/bin/env python3
"""Condense google-benchmark JSON output into BENCH_kernel.json.

Usage: bench_summary.py raw1.json [raw2.json ...] > BENCH_kernel.json

Keeps one entry per benchmark run: the per-iteration wall time and the
items-per-second counter (events/sec for the calendar and process
benchmarks in micro_sim_kernel, pages/sec for micro_buffer_pool).
"""

import json
import sys


def main() -> int:
    entries = []
    context = {}
    for path in sys.argv[1:]:
        with open(path) as f:
            data = json.load(f)
        ctx = data.get("context", {})
        context.setdefault("date", ctx.get("date"))
        context.setdefault("library_build_type", ctx.get("library_build_type"))
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            entry = {
                "name": bench["name"],
                "time_ns": bench.get("real_time"),
            }
            if "items_per_second" in bench:
                entry["items_per_sec"] = bench["items_per_second"]
            if bench.get("label"):
                entry["label"] = bench["label"]
            entries.append(entry)
    json.dump({"context": context, "benchmarks": entries}, sys.stdout,
              indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
