#!/usr/bin/env python3
"""Condense google-benchmark JSON output into BENCH_kernel.json.

Usage: bench_summary.py [--section name=file ...] raw1.json [raw2.json ...]
           > BENCH_kernel.json

Keeps one entry per benchmark run: the per-iteration wall time and the
items-per-second counter (events/sec for the calendar and process
benchmarks in micro_sim_kernel, pages/sec for micro_buffer_pool).

--section name=file embeds a non-google-benchmark JSON result (e.g. the
bench/sharded_scaling harness output) as a top-level section in the
summary: if the file's object already has a key `name`, that value is
taken; otherwise the whole object becomes the section.
"""

import json
import sys


def main() -> int:
    entries = []
    context = {}
    sections = {}
    args = iter(sys.argv[1:])
    for arg in args:
        if arg == "--section" or arg.startswith("--section="):
            spec = arg.split("=", 1)[1] if "=" in arg else next(args, "")
            name, _, path = spec.partition("=")
            if not name or not path:
                print(f"bench_summary: --section wants name=file, "
                      f"got {spec!r}", file=sys.stderr)
                return 2
            with open(path) as f:
                data = json.load(f)
            sections[name] = data.get(name, data)
            continue
        with open(arg) as f:
            data = json.load(f)
        ctx = data.get("context", {})
        context.setdefault("date", ctx.get("date"))
        context.setdefault("library_build_type", ctx.get("library_build_type"))
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            entry = {
                "name": bench["name"],
                "time_ns": bench.get("real_time"),
            }
            if "items_per_second" in bench:
                entry["items_per_sec"] = bench["items_per_second"]
            if bench.get("label"):
                entry["label"] = bench["label"]
            entries.append(entry)
    summary = {"context": context, "benchmarks": entries}
    summary.update(sections)
    json.dump(summary, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
