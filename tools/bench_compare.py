#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed BENCH_kernel.json.

Usage:
  bench_compare.py [--threshold=0.15] baseline.json fresh.json [...]

`baseline.json` is the committed BENCH_kernel.json, in either shape:
  * nested:  {"micro_sim_kernel": {"BM_Foo/64": {"after_items_per_sec": N,
             ...}, ...}, "micro_buffer_pool": {...}}
  * summary: {"context": {...}, "benchmarks": [{"name": ..., "time_ns":
             ..., "items_per_sec": ...}, ...]}  (tools/bench_summary.py)

`fresh.json` files are raw google-benchmark --benchmark_format=json
output or bench_summary.py output; several may be given (kernel + pool).

For every benchmark present on both sides, compares items/sec and fails
(exit 1) if any is more than --threshold (default 15%) below baseline.
A benchmark recorded in the baseline but MISSING from the fresh run is
an error (exit 1): a silently dropped benchmark would otherwise make a
regression invisible. Benchmarks only in the fresh run are reported but
never fail — the committed baseline may predate newly added benchmarks.
Speedups are reported too, as a nudge to refresh the baseline.

A "sharded_scaling" section (from bench/sharded_scaling) is compared by
its parallel speedup — "sharded_scaling/shards_4" etc., higher is
better, same ratio rule. Repeatable --min-rate=NAME:VALUE flags impose
absolute floors on fresh rates regardless of the baseline, e.g.
--min-rate=sharded_scaling/shards_4:2.0 demands >= 2x speedup on the
machine running the comparison (speedup floors only make sense where
the cores exist — CI sets this, a laptop smoke run need not).
"""

import json
import sys


def load_rates(path):
    """Returns {benchmark name: items_per_sec} from any supported shape."""
    with open(path) as f:
        data = json.load(f)
    rates = {}
    # A sharded_scaling section can ride along in any shape (the raw
    # harness output, the committed baseline, a bench_summary.py file).
    # Its comparable rate is the parallel speedup (higher is better),
    # one entry per shard count; scalars like "cores" are metadata.
    scaling = data.get("sharded_scaling")
    if isinstance(scaling, dict):
        for name, entry in scaling.items():
            if isinstance(entry, dict) and "speedup" in entry:
                rates[f"sharded_scaling/{name}"] = float(entry["speedup"])
    if "benchmarks" in data:
        # Raw google-benchmark output or bench_summary.py output.
        for bench in data["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            rate = bench.get("items_per_second", bench.get("items_per_sec"))
            if rate:
                rates[bench["name"]] = float(rate)
    else:
        # Committed nested shape: {harness: {name: {after_items_per_sec}}}.
        # Sections recording non-throughput results (e.g. "stream_share"
        # or "proxy_topology" capacity tables) carry no after_items_per_sec
        # entries and are skipped — the file may hold any mix of sections.
        # Every skip is logged so a silently-missing section is visible.
        for harness, entries in data.items():
            if not isinstance(entries, dict):
                print(f"bench_compare: skipping {path}:{harness} "
                      f"(metadata, not a benchmark section)",
                      file=sys.stderr)
                continue
            if harness == "sharded_scaling":
                continue  # handled above, in every shape
            found = 0
            for name, entry in entries.items():
                if isinstance(entry, dict) and "after_items_per_sec" in entry:
                    rates[name] = float(entry["after_items_per_sec"])
                    found += 1
            if found == 0:
                print(f"bench_compare: skipping {path}:{harness} "
                      f"(no after_items_per_sec entries — records "
                      f"non-throughput results)", file=sys.stderr)
    return rates


def main(argv):
    threshold = 0.15
    min_rates = {}
    paths = []
    for arg in argv:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-rate="):
            name, _, value = arg.split("=", 1)[1].rpartition(":")
            if not name:
                print(f"bench_compare: --min-rate wants NAME:VALUE, "
                      f"got {arg}", file=sys.stderr)
                return 2
            min_rates[name] = float(value)
        elif arg.startswith("--"):
            print(f"bench_compare: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = load_rates(paths[0])
    fresh = {}
    for path in paths[1:]:
        fresh.update(load_rates(path))
    if not baseline or not fresh:
        print(f"bench_compare: no comparable rates (baseline has "
              f"{len(baseline)}, fresh has {len(fresh)})", file=sys.stderr)
        return 2

    regressions = []
    missing = []
    print(f"{'benchmark':<42} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            print(f"{name:<42} {baseline[name]:>12.3g} {'absent':>12}"
                  f"   MISSING")
            missing.append(name)
            continue
        if name not in baseline:
            print(f"{name:<42} {'absent':>12} {fresh[name]:>12.3g}   (new)")
            continue
        ratio = fresh[name] / baseline[name]
        marker = ""
        if ratio < 1.0 - threshold:
            marker = "  REGRESSION"
            regressions.append((name, ratio))
        elif ratio > 1.0 + threshold:
            marker = "  (faster — consider refreshing baseline)"
        print(f"{name:<42} {baseline[name]:>12.3g} {fresh[name]:>12.3g} "
              f"{ratio:>6.2f}x{marker}")

    below_floor = []
    for name, floor in sorted(min_rates.items()):
        if name not in fresh:
            print(f"\nbench_compare: FAIL — --min-rate names {name}, "
                  f"absent from the fresh run", file=sys.stderr)
            below_floor.append((name, float("nan")))
        elif fresh[name] < floor:
            below_floor.append((name, fresh[name]))
            print(f"\nbench_compare: FAIL — {name} = {fresh[name]:.3g}, "
                  f"below the required floor {floor:.3g}", file=sys.stderr)
        else:
            print(f"bench_compare: floor ok — {name} = {fresh[name]:.3g} "
                  f">= {floor:.3g}")

    if missing:
        print(f"\nbench_compare: FAIL — {len(missing)} baseline "
              f"benchmark(s) missing from the fresh run (renamed or "
              f"dropped?):", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
    if regressions:
        print(f"\nbench_compare: FAIL — {len(regressions)} benchmark(s) "
              f"more than {threshold * 100:.0f}% below baseline:",
              file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x of baseline", file=sys.stderr)
    if missing or regressions or below_floor:
        return 1
    compared = len(set(baseline) & set(fresh))
    print(f"\nbench_compare: OK ({compared} benchmarks within "
          f"{threshold * 100:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
