#!/usr/bin/env python3
"""Measure the wall-clock overhead of telemetry sampling.

Runs `trace_run` twice over the same configuration — once with sampling
disabled (--interval=0) and once at the given interval — several times
each, and compares the best wall time of either mode. Fails (exit 1) if
sampling costs more than --max-overhead (default 2%).

Usage:
  telemetry_overhead.py [--binary=build/examples/trace_run]
                        [--terminals=100] [--interval=1.0]
                        [--repeats=3] [--max-overhead=0.02]

Best-of-N comparison deliberately discards scheduler noise: sampling
overhead is deterministic work (one extra sim event plus a row of probe
reads per interval), so it shows up in the minimum, while one-off stalls
do not.
"""

import re
import subprocess
import sys


def best_wall(binary, terminals, interval, repeats):
    best = None
    for _ in range(repeats):
        proc = subprocess.run(
            [binary, f"--terminals={terminals}", f"--interval={interval}",
             "--no-csv"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
            check=True)
        match = re.search(r"([0-9.]+)s wall", proc.stderr)
        if not match:
            print(f"telemetry_overhead: no wall time in trace_run output:\n"
                  f"{proc.stderr}", file=sys.stderr)
            sys.exit(2)
        wall = float(match.group(1))
        best = wall if best is None else min(best, wall)
    return best


def main(argv):
    binary = "build/examples/trace_run"
    terminals = 100
    interval = 1.0
    repeats = 3
    max_overhead = 0.02
    for arg in argv:
        if arg.startswith("--binary="):
            binary = arg.split("=", 1)[1]
        elif arg.startswith("--terminals="):
            terminals = int(arg.split("=", 1)[1])
        elif arg.startswith("--interval="):
            interval = float(arg.split("=", 1)[1])
        elif arg.startswith("--repeats="):
            repeats = int(arg.split("=", 1)[1])
        elif arg.startswith("--max-overhead="):
            max_overhead = float(arg.split("=", 1)[1])
        else:
            print(f"telemetry_overhead: unknown flag {arg}", file=sys.stderr)
            return 2

    off = best_wall(binary, terminals, 0, repeats)
    on = best_wall(binary, terminals, interval, repeats)
    overhead = (on - off) / off if off > 0 else 0.0
    print(f"telemetry_overhead: off={off:.3f}s on={on:.3f}s "
          f"(interval={interval}s) overhead={overhead * 100:+.2f}%")
    if overhead > max_overhead:
        print(f"telemetry_overhead: FAIL — sampling costs "
              f"{overhead * 100:.2f}% > {max_overhead * 100:.0f}% budget",
              file=sys.stderr)
        return 1
    print(f"telemetry_overhead: OK (budget {max_overhead * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
