#!/usr/bin/env python3
"""Render and validate SPIFFI run reports.

A run report is one JSON object per line (JSONL), written by
WriteRunReportJson (src/vod/report.cc) — from `trace_run --report-out`,
or from any bench harness via `--report[=PATH]` / SPIFFI_BENCH_REPORT=1.

Usage:
  run_report.py report.jsonl [more.jsonl ...]   human-readable table
  run_report.py --validate report.jsonl          schema check, exit 1 on
                                                 malformed lines
  run_report.py --json report.jsonl              re-emit as a JSON array
                                                 (for jq-style pipelines)

Validation checks each line parses as JSON, carries every required
field, and that the numeric fields are finite and sane (wall time and
event counts non-negative, config digest 16 hex chars).
"""

import json
import math
import sys

REQUIRED_TOP = {
    "label": str,
    "config": str,
    "config_digest": str,
    "seed": int,
    "terminals": int,
    "sim_seconds": (int, float),
    "wall_seconds": (int, float),
    "events_per_sec": (int, float),
    "metrics": dict,
    "telemetry_path": str,
}

REQUIRED_METRICS = {
    "measured_seconds": (int, float),
    "glitches": int,
    "terminals_with_glitches": int,
    "avg_response_ms": (int, float),
    "p50_response_ms": (int, float),
    "p99_response_ms": (int, float),
    "avg_disk_utilization": (int, float),
    "max_disk_utilization": (int, float),
    "avg_cpu_utilization": (int, float),
    "buffer_hit_ratio": (int, float),
    "disk_reads": int,
    "frames_displayed": int,
    "videos_completed": int,
    "avg_network_bytes_per_sec": (int, float),
    "peak_network_bytes_per_sec": (int, float),
    "events_simulated": int,
    "faults_injected": int,
}


def check(report, where):
    """Returns a list of problems with one parsed report object."""
    problems = []
    for field, kind in REQUIRED_TOP.items():
        if field not in report:
            problems.append(f"{where}: missing field '{field}'")
        elif not isinstance(report[field], kind):
            problems.append(
                f"{where}: field '{field}' has type "
                f"{type(report[field]).__name__}")
    metrics = report.get("metrics")
    if isinstance(metrics, dict):
        for field, kind in REQUIRED_METRICS.items():
            if field not in metrics:
                problems.append(f"{where}: missing metrics.{field}")
            elif not isinstance(metrics[field], kind):
                problems.append(
                    f"{where}: metrics.{field} has type "
                    f"{type(metrics[field]).__name__}")
    if problems:
        return problems

    digest = report["config_digest"]
    if len(digest) != 16 or any(c not in "0123456789abcdef" for c in digest):
        problems.append(f"{where}: config_digest '{digest}' is not 16 hex "
                        "chars")
    for field in ("sim_seconds", "wall_seconds", "events_per_sec"):
        v = report[field]
        if not math.isfinite(v) or v < 0:
            problems.append(f"{where}: {field} = {v}")
    for field in ("measured_seconds", "avg_response_ms", "p50_response_ms",
                  "p99_response_ms"):
        v = metrics[field]
        if not math.isfinite(v) or v < 0:
            problems.append(f"{where}: metrics.{field} = {v}")
    for field in ("avg_disk_utilization", "max_disk_utilization",
                  "avg_cpu_utilization", "buffer_hit_ratio"):
        v = metrics[field]
        if not math.isfinite(v) or v < 0 or v > 1.0 + 1e-9:
            problems.append(f"{where}: metrics.{field} = {v} outside [0,1]")
    if metrics["p50_response_ms"] > metrics["p99_response_ms"] + 1e-9:
        problems.append(f"{where}: p50 > p99")
    return problems


def load(paths):
    reports = []
    problems = []
    for path in paths:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    report = json.loads(line)
                except json.JSONDecodeError as e:
                    problems.append(f"{where}: not JSON ({e})")
                    continue
                problems.extend(check(report, where))
                reports.append(report)
    return reports, problems


def human(value, unit=""):
    if value >= 1e9:
        return f"{value / 1e9:.2f}G{unit}"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M{unit}"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k{unit}"
    return f"{value:.0f}{unit}"


def render(reports):
    header = (f"{'label':<28} {'terminals':>9} {'sim s':>7} {'wall s':>7} "
              f"{'ev/s':>9} {'glitches':>8} {'p99 ms':>8} {'disk%':>6} "
              f"{'hit%':>6}")
    print(header)
    print("-" * len(header))
    for r in reports:
        m = r["metrics"]
        print(f"{r['label']:<28} {r['terminals']:>9} "
              f"{r['sim_seconds']:>7.0f} {r['wall_seconds']:>7.2f} "
              f"{human(r['events_per_sec']):>9} {m['glitches']:>8} "
              f"{m['p99_response_ms']:>8.1f} "
              f"{m['avg_disk_utilization'] * 100:>5.1f}% "
              f"{m['buffer_hit_ratio'] * 100:>5.1f}%")
    if reports:
        r = reports[0]
        print(f"\nconfig digest {r['config_digest']}  seed {r['seed']}")
        print(f"config: {r['config']}")
        if r["telemetry_path"]:
            print(f"telemetry: {r['telemetry_path']}")


def main(argv):
    validate = "--validate" in argv
    as_json = "--json" in argv
    paths = [a for a in argv if not a.startswith("--")]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    reports, problems = load(paths)
    for problem in problems:
        print(f"run_report: {problem}", file=sys.stderr)
    if validate:
        n = len(reports)
        if problems:
            print(f"run_report: INVALID ({len(problems)} problems in "
                  f"{n} reports)", file=sys.stderr)
            return 1
        print(f"run_report: OK ({n} report{'s' if n != 1 else ''})")
        return 0
    if as_json:
        json.dump(reports, sys.stdout, indent=2)
        print()
        return 1 if problems else 0
    render(reports)
    return 1 if problems else 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
