// Interactive features: pause/resume (§8.1) and piggybacked starts
// (§8.2) in action.
//
//   ./interactive_features [terminals]
//
// Runs three scenarios at the same load — plain playback, playback with
// user pauses, and playback with a 5-minute piggyback batching window —
// and compares the load each places on the video server.

#include <cstdio>
#include <cstdlib>

#include "vod/simulation.h"
#include "vod/table.h"

int main(int argc, char** argv) {
  using namespace spiffi;

  int terminals = argc > 1 ? std::atoi(argv[1]) : 250;
  std::printf("interactive features at %d terminals\n\n", terminals);

  vod::TextTable table({"scenario", "glitches", "disk util",
                        "network avg", "videos completed"});

  for (int scenario = 0; scenario < 3; ++scenario) {
    vod::SimConfig config;
    config.terminals = terminals;
    config.server_memory_bytes = 512 * hw::kMiB;
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    const char* name = "plain playback";
    if (scenario == 1) {
      name = "with pauses (2 x 2 min avg)";
      config.pause_enabled = true;
    } else if (scenario == 2) {
      name = "piggyback (5 min window)";
      config.piggyback_window_sec = 300.0;
      // Grouped starts replace the steady-state position spread; give the
      // warmup time to cover the batching delay.
      config.warmup_seconds = config.start_window_sec + 360.0;
    }
    std::string error = config.Validate();
    if (!error.empty()) {
      std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
      return 1;
    }
    vod::SimMetrics m = vod::RunSimulation(config);
    table.AddRow({name, std::to_string(m.glitches),
                  vod::FmtPercent(m.avg_disk_utilization),
                  vod::FmtBytesPerSec(m.avg_network_bytes_per_sec),
                  std::to_string(m.videos_completed)});
    std::fprintf(stderr, "  %s done\n", name);
  }
  table.Print();
  std::printf(
      "\nPauses cost the server nothing (paused terminals stop "
      "consuming). Piggybacking\ncuts disk load sharply: grouped "
      "terminals share one stream, which is how a\n5-minute start delay "
      "more than doubles the supportable subscriber count.\n");
  return 0;
}
