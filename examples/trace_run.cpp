// Trace a simulation run.
//
// Independent outputs, any combination:
//   * stdout          — CSV time series of system state (disk queues,
//                       glitches, priming terminals, pool occupancy,
//                       network traffic), cumulative + per-interval
//                       columns
//   * --jsonl-out     — the same snapshots streamed as JSONL, one
//                       object per sampling interval (full channel set)
//   * --trace-out     — Chrome trace_event JSON of the full block-request
//                       lifecycle (terminal -> network -> server -> disk
//                       -> back), loadable in Perfetto / chrome://tracing
//   * --metrics-out   — metrics-registry JSON (every counter, tally,
//                       histogram and quantile sketch, including deadline
//                       slack and glitch attribution)
//   * --report-out    — one-line machine-readable run report (JSONL;
//                       config digest, wall/sim time, headline metrics),
//                       rendered by tools/run_report.py
//
//   ./trace_run [--terminals=N] [--trace-out=FILE.json]
//               [--metrics-out=FILE.json] [--jsonl-out=FILE.jsonl]
//               [--report-out=FILE.jsonl] [--interval=SEC]
//               [--retention=N] [--trace-capacity=N] [--no-csv]
//               > trace.csv
//
//   --terminals=N        terminals to simulate (default 250)
//   --interval=SEC       sampling interval (default 1.0; 0 disables
//                        telemetry sampling entirely — used by the CI
//                        overhead check)
//   --retention=N        keep only the most recent N snapshots in memory
//                        (0 = all; streaming outputs are unaffected)
//   --trace-capacity=N   trace ring capacity in events (default 256k;
//                        the ring keeps the most recent N events)
//   --no-csv             suppress the stdout CSV
//
// A bare positional number is still accepted as the terminal count.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "vod/report.h"
#include "vod/telemetry.h"
#include "vod/trace.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spiffi::vod::SimConfig config;
  config.terminals = 250;
  config.server_memory_bytes = 512LL * 1024 * 1024;
  config.replacement = spiffi::server::ReplacementPolicy::kLovePrefetch;

  std::string trace_out;
  std::string metrics_out;
  std::string jsonl_out;
  std::string report_out;
  double interval = 1.0;
  std::size_t retention = 0;
  std::size_t trace_capacity = 256 * 1024;
  bool write_csv = true;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--terminals", &value)) {
      config.terminals = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-out", &value)) {
      trace_out = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      metrics_out = value;
    } else if (ParseFlag(argv[i], "--jsonl-out", &value)) {
      jsonl_out = value;
    } else if (ParseFlag(argv[i], "--report-out", &value)) {
      report_out = value;
    } else if (ParseFlag(argv[i], "--interval", &value)) {
      interval = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--retention", &value)) {
      retention = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--trace-capacity", &value)) {
      trace_capacity = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--no-csv") == 0) {
      write_csv = false;
    } else if (argv[i][0] != '-') {
      config.terminals = std::atoi(argv[i]);  // legacy positional form
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 1;
    }
  }

  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
    return 1;
  }
  if (interval < 0.0) {
    std::fprintf(stderr, "bad --interval: must be >= 0\n");
    return 1;
  }
  std::fprintf(stderr, "tracing %d terminals: %s\n", config.terminals,
               config.Describe().c_str());

  spiffi::vod::Simulation simulation(config);
  if (!trace_out.empty()) simulation.EnableTracing(trace_capacity);

  std::ofstream jsonl_file;
  if (!jsonl_out.empty()) {
    jsonl_file.open(jsonl_out);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot write %s\n", jsonl_out.c_str());
      return 1;
    }
  }
  std::unique_ptr<spiffi::vod::TelemetryRecorder> telemetry;
  if (interval > 0.0) {
    spiffi::vod::TelemetryOptions options;
    options.interval_sec = interval;
    options.retention = retention;
    options.jsonl = jsonl_file.is_open() ? &jsonl_file : nullptr;
    telemetry = std::make_unique<spiffi::vod::TelemetryRecorder>(
        &simulation, options);
  }

  auto wall_start = std::chrono::steady_clock::now();
  spiffi::vod::SimMetrics metrics = simulation.Run();
  double wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  if (telemetry != nullptr && write_csv) {
    telemetry->series().WriteCsv(std::cout);
  }
  if (jsonl_file.is_open()) {
    jsonl_file.close();
    std::fprintf(stderr, "wrote telemetry JSONL to %s\n",
                 jsonl_out.c_str());
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    simulation.env().tracer()->WriteChromeJson(out);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu events, %llu "
                 "dropped)\n",
                 trace_out.c_str(), simulation.env().tracer()->size(),
                 static_cast<unsigned long long>(
                     simulation.env().tracer()->dropped()));
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    simulation.metrics().WriteJson(out);
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_out.c_str());
      return 1;
    }
    spiffi::vod::RunReport report;
    report.label = "trace_run";
    report.config_summary = config.Describe();
    report.config_digest = spiffi::vod::ConfigDigest(config);
    report.seed = config.seed;
    report.terminals = config.terminals;
    report.sim_seconds = config.warmup_seconds + config.measure_seconds;
    report.wall_seconds = wall_seconds;
    report.events_per_sec =
        wall_seconds > 0.0
            ? static_cast<double>(metrics.events_simulated) / wall_seconds
            : 0.0;
    report.metrics = metrics;
    report.telemetry_path = jsonl_out;
    spiffi::vod::WriteRunReportJson(out, report);
    std::fprintf(stderr, "wrote run report to %s\n", report_out.c_str());
  }

  std::fprintf(stderr,
               "done: %llu glitches, %.0f%% disk utilization, %zu "
               "samples, %.2fs wall\n",
               static_cast<unsigned long long>(metrics.glitches),
               metrics.avg_disk_utilization * 100,
               telemetry != nullptr ? telemetry->series().size()
                                    : static_cast<std::size_t>(0),
               wall_seconds);
  return 0;
}
