// Trace a simulation: sample the system every simulated second and dump
// a CSV time series (disk queues, glitches, priming terminals, buffer
// pool occupancy, network traffic) — useful for watching the saturation
// transition that defines the capacity boundary.
//
//   ./trace_run [terminals] > trace.csv

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "vod/trace.h"

int main(int argc, char** argv) {
  spiffi::vod::SimConfig config;
  config.terminals = argc > 1 ? std::atoi(argv[1]) : 250;
  config.server_memory_bytes = 512LL * 1024 * 1024;
  config.replacement = spiffi::server::ReplacementPolicy::kLovePrefetch;

  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "tracing %d terminals: %s\n", config.terminals,
               config.Describe().c_str());

  spiffi::vod::Simulation simulation(config);
  spiffi::vod::TraceRecorder trace(&simulation, 1.0);
  spiffi::vod::SimMetrics metrics = simulation.Run();
  trace.WriteCsv(std::cout);

  std::fprintf(stderr,
               "done: %llu glitches, %.0f%% disk utilization, %zu "
               "samples\n",
               static_cast<unsigned long long>(metrics.glitches),
               metrics.avg_disk_utilization * 100,
               trace.samples().size());
  return 0;
}
