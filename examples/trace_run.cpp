// Trace a simulation run.
//
// Three independent outputs, any combination:
//   * stdout          — 1 Hz CSV time series of system state (disk
//                       queues, glitches, priming terminals, pool
//                       occupancy, network traffic), as before
//   * --trace-out     — Chrome trace_event JSON of the full block-request
//                       lifecycle (terminal -> network -> server -> disk
//                       -> back), loadable in Perfetto / chrome://tracing
//   * --metrics-out   — metrics-registry JSON (every counter, tally and
//                       histogram, including deadline slack and glitch
//                       attribution)
//
//   ./trace_run [--terminals=N] [--trace-out=FILE.json]
//               [--metrics-out=FILE.json] [--interval=SEC]
//               [--trace-capacity=N] > trace.csv
//
//   --terminals=N        terminals to simulate (default 250)
//   --interval=SEC       CSV sampling interval (default 1.0)
//   --trace-capacity=N   trace ring capacity in events (default 256k;
//                        the ring keeps the most recent N events)
//
// A bare positional number is still accepted as the terminal count.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "vod/trace.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spiffi::vod::SimConfig config;
  config.terminals = 250;
  config.server_memory_bytes = 512LL * 1024 * 1024;
  config.replacement = spiffi::server::ReplacementPolicy::kLovePrefetch;

  std::string trace_out;
  std::string metrics_out;
  double interval = 1.0;
  std::size_t trace_capacity = 256 * 1024;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--terminals", &value)) {
      config.terminals = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-out", &value)) {
      trace_out = value;
    } else if (ParseFlag(argv[i], "--metrics-out", &value)) {
      metrics_out = value;
    } else if (ParseFlag(argv[i], "--interval", &value)) {
      interval = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-capacity", &value)) {
      trace_capacity = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (argv[i][0] != '-') {
      config.terminals = std::atoi(argv[i]);  // legacy positional form
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 1;
    }
  }

  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
    return 1;
  }
  if (interval <= 0.0) {
    std::fprintf(stderr, "bad --interval: must be > 0\n");
    return 1;
  }
  std::fprintf(stderr, "tracing %d terminals: %s\n", config.terminals,
               config.Describe().c_str());

  spiffi::vod::Simulation simulation(config);
  if (!trace_out.empty()) simulation.EnableTracing(trace_capacity);
  spiffi::vod::TraceRecorder trace(&simulation, interval);
  spiffi::vod::SimMetrics metrics = simulation.Run();
  trace.WriteCsv(std::cout);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    simulation.env().tracer()->WriteChromeJson(out);
    std::fprintf(stderr, "wrote Chrome trace to %s (%zu events, %llu "
                 "dropped)\n",
                 trace_out.c_str(), simulation.env().tracer()->size(),
                 static_cast<unsigned long long>(
                     simulation.env().tracer()->dropped()));
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    simulation.metrics().WriteJson(out);
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
  }

  std::fprintf(stderr,
               "done: %llu glitches, %.0f%% disk utilization, %zu "
               "samples\n",
               static_cast<unsigned long long>(metrics.glitches),
               metrics.avg_disk_utilization * 100,
               trace.samples().size());
  return 0;
}
