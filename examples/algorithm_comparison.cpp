// Algorithm comparison: run the same workload under every disk
// scheduling policy and both page-replacement policies, at a fixed
// terminal count, and compare what the subscriber experiences.
//
//   ./algorithm_comparison [terminals] [server_mb]
//
// Unlike the paper-figure harnesses (which search for each algorithm's
// capacity), this example holds the load constant so the per-request
// metrics are directly comparable — useful for picking algorithms for a
// known subscriber base.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "vod/simulation.h"
#include "vod/table.h"

int main(int argc, char** argv) {
  using namespace spiffi;

  int terminals = argc > 1 ? std::atoi(argv[1]) : 200;
  std::int64_t server_mb = argc > 2 ? std::atoll(argv[2]) : 512;

  std::printf("comparing algorithms at %d terminals, %lld MB server "
              "memory\n\n",
              terminals, static_cast<long long>(server_mb));

  struct Variant {
    std::string name;
    server::DiskSchedPolicy sched;
    server::ReplacementPolicy replacement;
    server::PrefetchPolicy prefetch;
  };
  std::vector<Variant> variants = {
      {"fcfs + lru", server::DiskSchedPolicy::kFcfs,
       server::ReplacementPolicy::kGlobalLru,
       server::PrefetchPolicy::kFifo},
      {"elevator + lru", server::DiskSchedPolicy::kElevator,
       server::ReplacementPolicy::kGlobalLru,
       server::PrefetchPolicy::kFifo},
      {"elevator + love", server::DiskSchedPolicy::kElevator,
       server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kFifo},
      {"round-robin + love", server::DiskSchedPolicy::kRoundRobin,
       server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kFifo},
      {"gss(4) + love", server::DiskSchedPolicy::kGss,
       server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kFifo},
      {"real-time + love + delayed", server::DiskSchedPolicy::kRealTime,
       server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kDelayed},
  };

  vod::TextTable table({"configuration", "glitches", "resp ms",
                        "disk util", "hit ratio", "wasted prefetch"});
  for (const Variant& v : variants) {
    vod::SimConfig config;
    config.terminals = terminals;
    config.server_memory_bytes = server_mb * hw::kMiB;
    config.disk_sched = v.sched;
    config.gss_groups = 4;
    config.replacement = v.replacement;
    config.prefetch = v.prefetch;
    std::string error = config.Validate();
    if (!error.empty()) {
      std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
      return 1;
    }
    vod::SimMetrics m = vod::RunSimulation(config);
    table.AddRow({v.name,
                  std::to_string(m.glitches),
                  vod::FmtDouble(m.avg_response_ms, 1),
                  vod::FmtPercent(m.avg_disk_utilization),
                  vod::FmtPercent(m.hit_ratio()),
                  std::to_string(m.wasted_prefetches)});
    std::fprintf(stderr, "  %s done\n", v.name.c_str());
  }
  table.Print();
  std::printf("\nA configuration with zero glitches serves this load; "
              "lower response times mean\nmore headroom before the "
              "capacity wall.\n");
  return 0;
}
