// Capacity planning: how many subscribers can a given hardware
// configuration serve glitch-free, and what does the storage cost per
// subscriber look like?
//
//   ./capacity_planning [nodes] [disks_per_node] [server_mb] [sched]
//
// sched: elevator (default) | realtime | gss | rr
//
// Runs a capacity search (paper §7.1) for the requested configuration and
// prints the supported terminal count together with utilization and a
// simple 1995-prices cost model (Table 3 style).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "vod/capacity.h"
#include "vod/simulation.h"
#include "vod/table.h"

namespace {

spiffi::server::DiskSchedPolicy ParseSched(const char* name) {
  using spiffi::server::DiskSchedPolicy;
  if (std::strcmp(name, "realtime") == 0) return DiskSchedPolicy::kRealTime;
  if (std::strcmp(name, "gss") == 0) return DiskSchedPolicy::kGss;
  if (std::strcmp(name, "rr") == 0) return DiskSchedPolicy::kRoundRobin;
  return DiskSchedPolicy::kElevator;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spiffi;

  vod::SimConfig config;
  config.num_nodes = argc > 1 ? std::atoi(argv[1]) : 4;
  config.disks_per_node = argc > 2 ? std::atoi(argv[2]) : 4;
  config.server_memory_bytes =
      (argc > 3 ? std::atoll(argv[3]) : 512) * hw::kMiB;
  config.disk_sched = ParseSched(argc > 4 ? argv[4] : "elevator");
  config.replacement = server::ReplacementPolicy::kLovePrefetch;
  if (config.disk_sched == server::DiskSchedPolicy::kRealTime) {
    config.prefetch = server::PrefetchPolicy::kDelayed;
  }

  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
    return 1;
  }

  std::printf("capacity planning for: %s\n", config.Describe().c_str());
  std::printf("searching for the maximum glitch-free terminal count...\n\n");

  vod::CapacitySearchOptions options;
  options.start_guess = 12 * config.total_disks();
  options.step = 5;
  options.verbose = true;
  vod::CapacityResult result = vod::FindMaxTerminals(config, options);

  const vod::SimMetrics& m = result.at_capacity;
  // Simple 1995 cost model: $4000 per 9 GB drive, $40/MB memory.
  double disk_cost = config.total_disks() * 4000.0;
  double memory_cost =
      static_cast<double>(config.server_memory_bytes / hw::kMiB) * 40.0;
  double total = disk_cost + memory_cost;

  vod::TextTable table({"metric", "value"});
  table.AddRow({"max glitch-free terminals",
                std::to_string(result.max_terminals)});
  table.AddRow({"avg disk utilization",
                vod::FmtPercent(m.avg_disk_utilization)});
  table.AddRow({"avg cpu utilization",
                vod::FmtPercent(m.avg_cpu_utilization)});
  table.AddRow({"peak network demand",
                vod::FmtBytesPerSec(m.peak_network_bytes_per_sec)});
  table.AddRow({"buffer hit ratio", vod::FmtPercent(m.hit_ratio())});
  table.AddRow({"storage cost (disks + memory)",
                "$" + vod::FmtDouble(total, 0)});
  if (result.max_terminals > 0) {
    table.AddRow({"storage cost per terminal",
                  "$" + vod::FmtDouble(total / result.max_terminals, 0)});
  }
  table.Print();
  return 0;
}
