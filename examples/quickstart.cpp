// Quickstart: run one SPIFFI video-on-demand simulation and print the
// collected metrics.
//
//   ./quickstart [terminals] [seed]
//
// Simulates the paper's base configuration — 4 nodes x 4 disks, 64
// one-hour videos striped in 512 KB blocks, Zipfian access, elevator disk
// scheduling — and reports whether the run was glitch-free along with
// utilization and buffer-pool behaviour.

#include <cstdio>
#include <cstdlib>

#include "vod/simulation.h"
#include "vod/table.h"

int main(int argc, char** argv) {
  spiffi::vod::SimConfig config;
  config.terminals = argc > 1 ? std::atoi(argv[1]) : 150;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "bad configuration: %s\n", error.c_str());
    return 1;
  }

  std::printf("SPIFFI video-on-demand quickstart\n");
  std::printf("configuration: %s\n", config.Describe().c_str());
  std::printf("terminals: %d, videos: %d, measurement: %.0f s\n\n",
              config.terminals, config.num_videos(),
              config.measure_seconds);

  spiffi::vod::SimMetrics m = spiffi::vod::RunSimulation(config);

  using spiffi::vod::FmtDouble;
  using spiffi::vod::FmtInt;
  using spiffi::vod::FmtPercent;
  spiffi::vod::TextTable table({"metric", "value"});
  table.AddRow({"glitches", FmtInt(static_cast<std::int64_t>(m.glitches))});
  table.AddRow({"glitch-free", m.glitch_free() ? "yes" : "no"});
  table.AddRow({"frames displayed",
                FmtInt(static_cast<std::int64_t>(m.frames_displayed))});
  table.AddRow({"avg disk utilization",
                FmtPercent(m.avg_disk_utilization)});
  table.AddRow({"avg cpu utilization", FmtPercent(m.avg_cpu_utilization)});
  table.AddRow({"buffer hit ratio", FmtPercent(m.hit_ratio())});
  table.AddRow({"shared references",
                FmtPercent(m.shared_reference_ratio())});
  table.AddRow({"avg response time",
                FmtDouble(m.avg_response_ms, 1) + " ms"});
  table.AddRow({"p99 response time",
                FmtDouble(m.p99_response_ms, 1) + " ms"});
  table.AddRow({"avg disk service",
                FmtDouble(m.avg_disk_service_ms, 1) + " ms"});
  table.AddRow({"peak network demand",
                spiffi::vod::FmtBytesPerSec(m.peak_network_bytes_per_sec)});
  table.AddRow({"events simulated",
                FmtInt(static_cast<std::int64_t>(m.events_simulated))});
  table.Print();
  return 0;
}
