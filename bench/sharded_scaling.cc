// Sharded-kernel scaling: wall-clock of one simulation run at shard
// counts 1/2/4/8 on a large multi-node configuration (ISSUE 10).
//
// The smoke preset uses a 64-disk system (16 nodes x 4 disks); fast and
// full use the 256-disk class (32 nodes x 8 disks). Every sharded run's
// metrics are checked bit-identical against the single-shard run — a
// scaling number from a run that diverged would be meaningless — and
// the harness exits non-zero on any mismatch.
//
// Human-readable results go to stderr; stdout carries one JSON object
//
//   {"sharded_scaling": {"cores": N, "shards_2": {"wall_sec": ...,
//    "speedup": ..., "events_per_sec": ...}, ...}}
//
// which CI captures and feeds to tools/bench_compare.py (speedup is the
// rate compared there, higher is better) and embeds into the committed
// BENCH_kernel.json via tools/bench_summary.py --section.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace {

using spiffi::vod::SimConfig;
using spiffi::vod::SimMetrics;

// Exact comparison of every metric the determinism suite locks; doubles
// included. Returns false (and prints the first divergence) on mismatch.
bool BitIdentical(const SimMetrics& a, const SimMetrics& b) {
#define SPIFFI_SAME(field)                                               \
  do {                                                                   \
    if (!(a.field == b.field)) {                                         \
      std::fprintf(stderr, "sharded_scaling: metrics diverge at %s\n",   \
                   #field);                                              \
      return false;                                                      \
    }                                                                    \
  } while (0)
  SPIFFI_SAME(terminals);
  SPIFFI_SAME(measured_seconds);
  SPIFFI_SAME(glitches);
  SPIFFI_SAME(terminals_with_glitches);
  SPIFFI_SAME(avg_disk_utilization);
  SPIFFI_SAME(max_disk_utilization);
  SPIFFI_SAME(avg_cpu_utilization);
  SPIFFI_SAME(peak_network_bytes_per_sec);
  SPIFFI_SAME(avg_network_bytes_per_sec);
  SPIFFI_SAME(buffer_references);
  SPIFFI_SAME(buffer_hits);
  SPIFFI_SAME(disk_reads);
  SPIFFI_SAME(avg_response_ms);
  SPIFFI_SAME(p50_response_ms);
  SPIFFI_SAME(p99_response_ms);
  SPIFFI_SAME(frames_displayed);
  SPIFFI_SAME(videos_completed);
  SPIFFI_SAME(events_simulated);
#undef SPIFFI_SAME
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  // Not PrintHeader(): that writes to stdout, which carries only JSON here.
  std::fprintf(stderr, "=== sharded kernel scaling — preset: %s ===\n",
               bench::PresetName(preset));

  vod::SimConfig config = bench::BaseConfig(preset);
  if (preset == bench::Preset::kSmoke) {
    config.num_nodes = 16;
    config.disks_per_node = 4;
    config.terminals = 240;
  } else {
    config.num_nodes = 32;  // the 256-disk class
    config.disks_per_node = 8;
    config.terminals = preset == bench::Preset::kFull ? 1000 : 800;
  }
  config.server_memory_bytes =
      static_cast<std::int64_t>(config.num_nodes) * 128 * hw::kMiB;
  // The base wire delay doubles as the conservative lookahead, so it sets
  // how often shard clocks must synchronize. The 5us default forces a sync
  // round every few microseconds of simulated time — pure overhead. 1ms
  // (an ordinary LAN delay) is still 33x under the frame period and leaves
  // results bit-identical across shard counts (checked below).
  config.network.wire_delay_base_sec = 1e-3;

  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(stderr, "  %d nodes x %d disks, %d terminals, %u cores\n",
               config.num_nodes, config.disks_per_node, config.terminals,
               cores);

  struct Point {
    int shards;
    double wall_sec;
    double events_per_sec;
    SimMetrics metrics;
  };
  std::vector<Point> points;
  for (int shards : {1, 2, 4, 8}) {
    SimConfig sharded = config;
    sharded.shards = shards;
    std::string problem = sharded.Validate();
    if (!problem.empty()) {
      std::fprintf(stderr, "  shards=%d skipped: %s\n", shards,
                   problem.c_str());
      continue;
    }
    auto start = std::chrono::steady_clock::now();
    SimMetrics metrics = vod::RunSimulation(sharded);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    points.push_back({shards, wall,
                      static_cast<double>(metrics.events_simulated) / wall,
                      metrics});
    std::fprintf(stderr, "  shards=%d  wall %.2fs  %.3g events/s\n", shards,
                 wall, points.back().events_per_sec);
  }
  if (points.empty() || points.front().shards != 1) {
    std::fprintf(stderr, "sharded_scaling: no single-shard baseline run\n");
    return 1;
  }

  // A speedup only counts if the sharded run reproduced the single-shard
  // results exactly.
  for (const Point& p : points) {
    if (p.shards == 1) continue;
    if (!BitIdentical(points.front().metrics, p.metrics)) {
      std::fprintf(stderr,
                   "sharded_scaling: shards=%d diverged from shards=1\n",
                   p.shards);
      return 1;
    }
  }

  // stdout carries only the JSON object; the readable table goes to
  // stderr so `sharded_scaling --smoke > sharded_scaling.json` is clean.
  std::fprintf(stderr, "  %8s %10s %9s %12s\n", "shards", "wall sec",
               "speedup", "events/sec");
  std::printf("{\"sharded_scaling\": {\"cores\": %u, \"preset\": \"%s\", "
              "\"disks\": %d, \"terminals\": %d",
              cores, bench::PresetName(preset),
              config.num_nodes * config.disks_per_node, config.terminals);
  for (const Point& p : points) {
    double speedup = points.front().wall_sec / p.wall_sec;
    std::fprintf(stderr, "  %8d %10.2f %8.2fx %11.2fM\n", p.shards,
                 p.wall_sec, speedup, p.events_per_sec / 1e6);
    std::printf(", \"shards_%d\": {\"wall_sec\": %.4g, \"speedup\": %.4g, "
                "\"events_per_sec\": %.6g}",
                p.shards, p.wall_sec, speedup, p.events_per_sec);
  }
  std::printf("}}\n");
  return 0;
}
