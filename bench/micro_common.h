// Shared --profile mode for the google-benchmark microbench binaries.
//
// The figure/table harnesses profile the simulations they already run
// (bench_common.h); the microbenches have no simulation, so --profile
// here drives a fixed synthetic kernel workload — a large population of
// coroutine processes exchanging timed holds through one Environment —
// and writes the kernel self-profile (events/sec wall throughput,
// calendar high-water marks, process counts) as bench_profile.json.

#ifndef SPIFFI_BENCH_MICRO_COMMON_H_
#define SPIFFI_BENCH_MICRO_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/kernel_profile.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/semaphore.h"

namespace spiffi::bench {

inline sim::Process ProfileHoldLoop(sim::Environment* env, int holds) {
  for (int i = 0; i < holds; ++i) co_await env->Hold(0.001);
}

inline sim::Process ProfileSemLoop(sim::Environment* env,
                                   sim::Semaphore* sem, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await sem->Acquire();
    co_await env->Hold(0.001);
    sem->Release();
  }
}

inline int RunKernelProfile(const std::string& name,
                            const std::string& path) {
  constexpr int kProcesses = 2000;
  constexpr int kHolds = 500;
  constexpr int kContenders = 200;
  constexpr int kRounds = 100;

  auto wall_start = std::chrono::steady_clock::now();
  sim::Environment env;
  sim::Semaphore sem(&env, 1);
  for (int p = 0; p < kProcesses; ++p) {
    env.Spawn(ProfileHoldLoop(&env, kHolds));
  }
  for (int p = 0; p < kContenders; ++p) {
    env.Spawn(ProfileSemLoop(&env, &sem, kRounds));
  }
  env.Run();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  obs::KernelProfile profile = obs::CaptureKernelProfile(env);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "profile: cannot write %s\n", path.c_str());
    return 1;
  }
  obs::WriteKernelProfileJson(out, name, profile, wall_seconds);
  out << "\n";
  std::printf("profile: wrote %s (%llu events, %.3fs wall, %.0f events/s)\n",
              path.c_str(),
              static_cast<unsigned long long>(profile.events_fired),
              wall_seconds,
              wall_seconds > 0.0 ? profile.events_fired / wall_seconds
                                 : 0.0);
  return 0;
}

// Consumes --profile[=PATH] (or SPIFFI_BENCH_PROFILE=1). Returns >= 0
// with an exit code when the process ran in profile mode and should
// exit; -1 to continue into the normal benchmark main.
inline int MaybeRunProfileMode(int argc, char** argv) {
  std::string path = "bench_profile.json";
  bool enabled = false;
  const char* env = std::getenv("SPIFFI_BENCH_PROFILE");
  if (env != nullptr && env[0] == '1') enabled = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      enabled = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      enabled = true;
      path = argv[i] + 10;
    }
  }
  if (!enabled) return -1;
  std::string name = "micro";
  if (argc > 0 && argv[0] != nullptr) {
    name = argv[0];
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
  }
  return RunKernelProfile(name, path);
}

}  // namespace spiffi::bench

#endif  // SPIFFI_BENCH_MICRO_COMMON_H_
