// Table 2: scaleup — maximum glitch-free terminals as the system grows
// from 16 to 32 to 64 disks with videos and server memory scaled
// proportionally (4 CPUs throughout), for the paper's four base
// configurations (§7.6). Scaleup efficiency relative to the 16-disk base
// is shown in parentheses, as in the paper.
//
// Figures 17 and 18 derive from the same runs; this harness also prints
// the CPU utilization and peak network bandwidth at capacity.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("scaleup to 32 and 64 disks", "Table 2", preset);

  struct BaseConfig {
    std::string sched;
    double terminal_mb;
    std::int64_t server_mb_base;  // at 16 disks; scales with disks
    bool realtime;
  };
  std::vector<BaseConfig> bases = {
      {"elevator", 2.0, 128, false},
      {"elevator", 2.5, 128, false},
      {"elevator", 2.0, 512, false},
      {"real-time", 2.0, 512, true},
  };
  const std::vector<int> scale = {1, 2, 4};  // 16, 32, 64 disks

  vod::TextTable table({"sched", "term MB", "disks", "server MB",
                        "max terms", "scaleup", "cpu util", "peak net"});

  for (const BaseConfig& base : bases) {
    int base_capacity = 0;
    for (int s : scale) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.num_nodes = 4;
      config.disks_per_node = 4 * s;  // 4 CPUs regardless of disks
      config.server_memory_bytes = base.server_mb_base * s * hw::kMiB;
      config.terminal_memory_bytes =
          static_cast<std::int64_t>(base.terminal_mb * hw::kMiB);
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      if (base.realtime) {
        config.disk_sched = server::DiskSchedPolicy::kRealTime;
        config.realtime_classes = 3;
        config.realtime_spacing_sec = 4.0;
        config.prefetch = server::PrefetchPolicy::kDelayed;
        config.max_advance_prefetch_sec = 8.0;
      } else {
        config.disk_sched = server::DiskSchedPolicy::kElevator;
        config.prefetch = server::PrefetchPolicy::kFifo;
      }
      vod::CapacitySearchOptions options =
          bench::SearchOptions(preset, 200 * s);
      // Coarser steps at scale keep the big searches affordable.
      options.step = preset == bench::Preset::kFull ? 5 : 5 * s;
      vod::CapacityResult result = vod::FindMaxTerminals(config, options);
      if (s == 1) base_capacity = result.max_terminals;
      double efficiency =
          base_capacity > 0
              ? static_cast<double>(result.max_terminals) /
                    (static_cast<double>(base_capacity) * s)
              : 0.0;
      char scaleup[32];
      if (s == 1) {
        std::snprintf(scaleup, sizeof(scaleup), "base");
      } else {
        std::snprintf(scaleup, sizeof(scaleup), "(%.2f)", efficiency);
      }
      table.AddRow({base.sched, vod::FmtDouble(base.terminal_mb, 1),
                    std::to_string(16 * s),
                    std::to_string(base.server_mb_base * s),
                    std::to_string(result.max_terminals), scaleup,
                    vod::FmtPercent(
                        result.at_capacity.avg_cpu_utilization),
                    vod::FmtBytesPerSec(
                        result.at_capacity.peak_network_bytes_per_sec)});
      std::fprintf(stderr, "  %s %.1fMB x%d -> %d\n", base.sched.c_str(),
                   base.terminal_mb, s, result.max_terminals);
    }
  }
  table.Print();
  return 0;
}
