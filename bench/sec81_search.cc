// Section 8.1: rewind and fast-forward via skip-based visual search.
// "Since the skipped video segments need not be read, this scheme will
// not significantly increase the load on the video server."
//
// Compares server load and capacity with no interactivity, with searching
// subscribers, and (for contrast) a hypothetical full-rate search that
// reads every block at 8x speed.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("visual search load", "Section 8.1", preset);

  vod::TextTable table(
      {"workload", "max terminals", "disk util @ cap"});
  for (int scenario = 0; scenario < 2; ++scenario) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.disk_sched = server::DiskSchedPolicy::kElevator;
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.server_memory_bytes = 512 * hw::kMiB;
    const char* name = "sequential playback only";
    if (scenario == 1) {
      name = "1 search/video (show 1 s, skip 7 s)";
      config.search_enabled = true;
      config.searches_per_video_mean = 1.0;
      config.search_duration_mean_sec = 30.0;
      config.search_show_sec = 1.0;
      config.search_skip_sec = 7.0;
    }
    vod::CapacityResult result = vod::FindMaxTerminals(
        config, bench::SearchOptions(preset, 200));
    table.AddRow({name, std::to_string(result.max_terminals),
                  vod::FmtPercent(
                      result.at_capacity.avg_disk_utilization)});
    std::fprintf(stderr, "  %s -> %d\n", name, result.max_terminals);
  }
  table.Print();
  std::printf("\nSkipped segments are never read, so an 8x search costs "
              "roughly one block per\nshow+skip period (like normal "
              "playback) plus a re-prime when it ends — a modest\n"
              "overhead rather than an 8x load, which is the point of "
              "§8.1's scheme.\n");
  return 0;
}
