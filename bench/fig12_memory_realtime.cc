// Figure 12: reducing server memory requirements under real-time disk
// scheduling (3 classes, 4 s spacing) with aggressive real-time
// prefetching — global LRU vs. love prefetch vs. love prefetch plus
// delayed prefetching with 8 s and 4 s maximum advance (§7.3).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("server memory vs. replacement+prefetch (real-time)",
                     "Figure 12", preset);

  struct Variant {
    std::string name;
    server::ReplacementPolicy replacement;
    server::PrefetchPolicy prefetch;
    double max_advance = 8.0;
  };
  std::vector<Variant> variants = {
      {"global LRU", server::ReplacementPolicy::kGlobalLru,
       server::PrefetchPolicy::kRealTime},
      {"love prefetch", server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kRealTime},
      {"love + delayed (8 s)", server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kDelayed, 8.0},
      {"love + delayed (4 s)", server::ReplacementPolicy::kLovePrefetch,
       server::PrefetchPolicy::kDelayed, 4.0},
  };

  std::vector<std::string> headers = {"server memory"};
  for (const Variant& v : variants) headers.push_back(v.name);
  vod::TextTable table(headers);

  std::vector<std::vector<int>> results(
      bench::kMemorySweepPoints, std::vector<int>(variants.size()));
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kRealTime;
      config.realtime_classes = 3;
      config.realtime_spacing_sec = 4.0;
      config.replacement = variants[v].replacement;
      config.prefetch = variants[v].prefetch;
      config.max_advance_prefetch_sec = variants[v].max_advance;
      config.server_memory_bytes =
          bench::kMemorySweepMiB[m] * hw::kMiB;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 200));
      results[m][v] = result.max_terminals;
      std::fprintf(stderr, "  %s @ %lld MB -> %d\n",
                   variants[v].name.c_str(),
                   static_cast<long long>(bench::kMemorySweepMiB[m]),
                   result.max_terminals);
    }
  }
  for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
    std::vector<std::string> row = {
        std::to_string(bench::kMemorySweepMiB[m]) + " MB"};
    for (std::size_t v = 0; v < variants.size(); ++v) {
      row.push_back(std::to_string(results[m][v]));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
