// Figure 9: finding the maximum number of terminals without glitches —
// the glitch count as the terminal count is swept through the capacity
// of one configuration (16 disks, 512 KB stripe, elevator scheduling).

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("glitches vs. number of terminals", "Figure 9",
                     preset);

  vod::SimConfig config = bench::BaseConfig(preset);
  std::printf("config: %s\n\n", config.Describe().c_str());

  // Locate the capacity first so the sweep brackets it like the paper's
  // example does.
  vod::CapacityResult capacity =
      vod::FindMaxTerminals(config, bench::SearchOptions(preset));
  int c = capacity.max_terminals;

  std::vector<int> counts;
  for (int delta : {-40, -20, -10, 0, 10, 20, 40, 60}) {
    if (c + delta > 0) counts.push_back(c + delta);
  }
  auto curve = vod::GlitchCurve(config, counts, /*replications=*/1,
                                bench::JobsSetting());

  vod::TextTable table({"terminals", "glitches"});
  for (const auto& [terminals, glitches] : curve) {
    table.AddRow({std::to_string(terminals), std::to_string(glitches)});
  }
  table.Print();
  std::printf("\nmax terminals without glitches: %d\n", c);
  return 0;
}
