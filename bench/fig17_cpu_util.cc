// Figure 17: CPU utilization as the system is scaled from 16 to 64 disks
// (4 CPUs throughout) — even at 16 disks per node the CPUs are nowhere
// near saturation (§7.6).

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("CPU utilization during scaleup", "Figure 17",
                     preset);

  vod::TextTable table({"disks", "terminals", "avg cpu utilization"});
  for (int s : {1, 2, 4}) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.num_nodes = 4;
    config.disks_per_node = 4 * s;
    config.server_memory_bytes = 512LL * s * hw::kMiB;
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.disk_sched = server::DiskSchedPolicy::kRealTime;
    config.prefetch = server::PrefetchPolicy::kDelayed;
    vod::CapacitySearchOptions options =
        bench::SearchOptions(preset, 200 * s);
    options.step = preset == bench::Preset::kFull ? 5 : 5 * s;
    vod::CapacityResult result = vod::FindMaxTerminals(config, options);
    table.AddRow({std::to_string(16 * s),
                  std::to_string(result.max_terminals),
                  vod::FmtPercent(
                      result.at_capacity.avg_cpu_utilization)});
    std::fprintf(stderr, "  %d disks -> %d terminals, cpu %.1f%%\n",
                 16 * s, result.max_terminals,
                 result.at_capacity.avg_cpu_utilization * 100);
  }
  table.Print();
  std::printf("\nCPU is never the bottleneck: the video server remains "
              "I/O bound at every scale.\n");
  return 0;
}
