// Hierarchical proxy tier: two-tier topology with popularity-aware
// cache policies (proxy/proxy_node.h).
//
// Two questions, two phases:
//
//  1. Origin offload — at a fixed terminal count, how much of the
//     request stream do the proxy caches absorb (hits + attaches) as a
//     function of cache size, replacement policy, and popularity skew?
//     Swept at the video-rental skew (z = 0.271) and the paper's
//     default z = 1; offload must grow with cache size and the
//     popularity-aware policies must not trail plain LRU at high skew.
//
//  2. Capacity gain — the offloaded origin work buys admission
//     headroom: glitch-free capacity with the proxy tier off vs on,
//     same hardware.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "proxy/proxy_cache.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("hierarchical proxy tier", "two-tier topology",
                     preset);
  bool smoke = preset == bench::Preset::kSmoke;

  constexpr int kProxies = 4;

  // Proxy caches pay off when request streams overlap: terminals watch
  // from the beginning (VCR-style starts, as in the stream-share
  // experiments) staggered over a wide arrival window, over a compact
  // popular library of 10-minute features. At 4 Mbit/s one 512 KB page
  // holds one second of footage, so pages/proxy reads directly as the
  // seconds of trailing footage a follower can still find cached.
  auto shared_start_config = [&](bench::Preset p) {
    vod::SimConfig config = bench::BaseConfig(p);
    config.videos_per_disk = 1;  // 16-video popular library
    config.video_seconds = 600.0;
    config.random_initial_position = false;
    config.start_window_sec = smoke ? 120.0 : 600.0;
    config.warmup_seconds = config.start_window_sec + 60.0;
    config.measure_seconds = smoke ? 60.0 : 240.0;
    return config;
  };

  // --- Phase 1: origin offload at fixed load ---
  const int terminals = smoke ? 60 : 160;
  std::vector<std::int64_t> cache_pages =
      smoke ? std::vector<std::int64_t>{128, 512}
            : std::vector<std::int64_t>{128, 512, 2048};
  std::vector<double> skews =
      smoke ? std::vector<double>{0.271} : std::vector<double>{0.271, 1.0};
  const proxy::ProxyPolicy policies[] = {
      proxy::ProxyPolicy::kLru, proxy::ProxyPolicy::kRankZipf,
      proxy::ProxyPolicy::kAdaptivePrefix};

  vod::TextTable offload_table(
      {"z", "policy", "pages/proxy", "offload", "hit ratio",
       "origin reads/s", "fwd ms"});
  for (double z : skews) {
    for (proxy::ProxyPolicy policy : policies) {
      for (std::int64_t pages : cache_pages) {
        vod::SimConfig config = shared_start_config(preset);
        config.zipf_z = z;
        config.terminals = terminals;
        config.proxy_nodes = kProxies;
        config.proxy_cache_pages = pages;
        config.proxy_policy = policy;
        vod::SimMetrics m = vod::RunSimulation(config);
        double hit_ratio =
            m.proxy_references == 0
                ? 0.0
                : static_cast<double>(m.proxy_hits) / m.proxy_references;
        double origin_reads_per_sec =
            m.measured_seconds == 0.0 ? 0.0
                                      : m.disk_reads / m.measured_seconds;
        offload_table.AddRow(
            {vod::FmtDouble(z, 3), proxy::ProxyPolicyName(policy),
             std::to_string(pages),
             vod::FmtDouble(m.proxy_offload_ratio(), 3),
             vod::FmtDouble(hit_ratio, 3),
             vod::FmtDouble(origin_reads_per_sec, 1),
             vod::FmtDouble(m.avg_proxy_forward_ms, 2)});
        std::fprintf(stderr,
                     "  z=%.3f %s %lld pages: offload %.3f (%llu refs)\n",
                     z, proxy::ProxyPolicyName(policy),
                     static_cast<long long>(pages), m.proxy_offload_ratio(),
                     static_cast<unsigned long long>(m.proxy_references));
      }
    }
  }
  offload_table.Print();

  // --- Phase 2: capacity gain from the offload ---
  // The proxy tier buys admission headroom only when the origin is the
  // bottleneck: a lean origin pool (128 MB across the cluster) over the
  // full 64-video library, so origin disks carry the misses the proxies
  // fail to absorb.
  vod::SimConfig base = shared_start_config(preset);
  base.videos_per_disk = 4;  // full library again
  base.server_memory_bytes = 128 * hw::kMiB;
  base.zipf_z = 0.271;
  vod::CapacitySearchOptions options = bench::SearchOptions(preset, 200);
  options.step = smoke ? 25 : 10;
  options.max_terminals = smoke ? 400 : 1200;

  vod::SimConfig flat = base;
  vod::CapacityResult flat_result = vod::FindMaxTerminals(flat, options);

  vod::SimConfig proxied = base;
  proxied.proxy_nodes = kProxies;
  proxied.proxy_cache_pages = smoke ? 512 : 2048;
  proxied.proxy_policy = proxy::ProxyPolicy::kRankZipf;
  vod::CapacityResult proxied_result =
      vod::FindMaxTerminals(proxied, options);

  double gain = flat_result.max_terminals > 0
                    ? static_cast<double>(proxied_result.max_terminals) /
                          flat_result.max_terminals
                    : 0.0;
  vod::TextTable capacity_table(
      {"topology", "capacity", "gain"});
  capacity_table.AddRow({"flat", std::to_string(flat_result.max_terminals),
                         "x1.00"});
  capacity_table.AddRow(
      {"proxy " + std::to_string(kProxies) + "x" +
           std::to_string(proxied.proxy_cache_pages) + " rank-zipf",
       std::to_string(proxied_result.max_terminals),
       "x" + vod::FmtDouble(gain, 2)});
  capacity_table.Print();
  return 0;
}
