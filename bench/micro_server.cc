// Microbenchmarks for the server building blocks: buffer pool operations,
// disk scheduler pops, and a whole small simulation per second of
// simulated time.

#include <benchmark/benchmark.h>

#include "micro_common.h"

#include <memory>
#include <vector>

#include "server/buffer_pool.h"
#include "server/disk_sched.h"
#include "vod/simulation.h"

namespace {

using namespace spiffi;

void BM_BufferPoolAllocateCompleteEvict(benchmark::State& state) {
  sim::Environment env;
  server::BufferPool pool(&env, 1024,
                          server::ReplacementPolicy::kLovePrefetch);
  std::int64_t block = 0;
  for (auto _ : state) {
    server::PageKey key{0, block++};
    server::BufferPool::Page* page = pool.Allocate(key, block % 2 == 0);
    pool.Complete(page);
    pool.Touch(page, static_cast<int>(block % 7));
    pool.Unpin(page);
    benchmark::DoNotOptimize(page);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolAllocateCompleteEvict);

void BM_BufferPoolLookupHit(benchmark::State& state) {
  sim::Environment env;
  server::BufferPool pool(&env, 4096,
                          server::ReplacementPolicy::kGlobalLru);
  for (std::int64_t b = 0; b < 4096; ++b) {
    auto* page = pool.Allocate(server::PageKey{0, b}, false);
    pool.Complete(page);
    pool.Unpin(page);
  }
  std::int64_t b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Lookup(server::PageKey{0, b}));
    b = (b + 997) % 4096;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolLookupHit);

template <typename MakeSched>
void SchedulerChurn(benchmark::State& state, MakeSched make) {
  auto sched = make();
  const int depth = static_cast<int>(state.range(0));
  std::vector<hw::DiskRequest> requests(depth * 2);
  for (int i = 0; i < depth * 2; ++i) {
    requests[i].disk_offset = (i * 37 % 5000) * 1280 * 1024;
    requests[i].bytes = 512 * 1024;
    requests[i].terminal = i % 64;
    requests[i].deadline = 1.0 + i % 8;
    requests[i].seq = i;
  }
  for (int i = 0; i < depth; ++i) sched->Push(&requests[i]);
  int next = depth;
  std::int64_t head = 0;
  for (auto _ : state) {
    hw::DiskRequest* r = sched->Pop(head, 0.5);
    head = r->disk_offset / (1280 * 1024);
    sched->Push(&requests[next % (depth * 2)]);
    ++next;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ElevatorPop(benchmark::State& state) {
  SchedulerChurn(state, [] {
    return std::make_unique<server::ElevatorScheduler>(1280 * 1024);
  });
}
BENCHMARK(BM_ElevatorPop)->Arg(16)->Arg(128);

void BM_RealTimePop(benchmark::State& state) {
  SchedulerChurn(state, [] {
    return std::make_unique<server::RealTimeScheduler>(3, 4.0,
                                                       1280 * 1024);
  });
}
BENCHMARK(BM_RealTimePop)->Arg(16)->Arg(128);

void BM_GssPop(benchmark::State& state) {
  SchedulerChurn(state, [] {
    return std::make_unique<server::GssScheduler>(4, 1280 * 1024);
  });
}
BENCHMARK(BM_GssPop)->Arg(16)->Arg(128);

// End-to-end: cost of one simulated second of a 2x2 disk system with 20
// terminals (the integration-test configuration).
void BM_SimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    vod::SimConfig config;
    config.num_nodes = 2;
    config.disks_per_node = 2;
    config.video_seconds = 120.0;
    config.server_memory_bytes = 256LL * 1024 * 1024;
    config.terminals = 20;
    config.start_window_sec = 2.0;
    config.warmup_seconds = 2.0;
    config.measure_seconds = 8.0;
    vod::SimMetrics m = vod::RunSimulation(config);
    benchmark::DoNotOptimize(m.events_simulated);
  }
}
BENCHMARK(BM_SimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  int profile_rc = spiffi::bench::MaybeRunProfileMode(argc, argv);
  if (profile_rc >= 0) return profile_rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
