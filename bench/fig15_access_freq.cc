// Figures 15 and 16: movie access frequencies (§7.5).
//
// Fig 15: maximum glitch-free terminals for uniform and Zipfian (z = 0.5,
// 1.0, 1.5) popularity over the server memory sweep — with ample memory
// the more skewed workloads win because terminals share buffered blocks.
// Fig 16: the percentage of buffer-pool references that find a page
// previously referenced by another terminal, for the same runs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("movie access frequencies", "Figures 15 and 16",
                     preset);

  const std::vector<std::pair<std::string, double>> distributions = {
      {"uniform", 0.0}, {"zipf 0.5", 0.5}, {"zipf 1.0", 1.0},
      {"zipf 1.5", 1.5}};
  const std::vector<std::int64_t> memory_mb = {128, 512, 2048, 4096};

  std::vector<std::string> headers = {"distribution"};
  for (std::int64_t mb : memory_mb) {
    headers.push_back(std::to_string(mb) + " MB");
  }
  vod::TextTable capacity_table(headers);
  vod::TextTable sharing_table(headers);

  for (const auto& [name, z] : distributions) {
    std::vector<std::string> capacity_row = {name};
    std::vector<std::string> sharing_row = {name};
    for (std::int64_t mb : memory_mb) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kElevator;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.zipf_z = z;
      config.server_memory_bytes = mb * hw::kMiB;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 200));
      capacity_row.push_back(std::to_string(result.max_terminals));
      sharing_row.push_back(vod::FmtPercent(
          result.at_capacity.shared_reference_ratio()));
      std::fprintf(stderr, "  %s @ %lld MB -> %d (shared %.1f%%)\n",
                   name.c_str(), static_cast<long long>(mb),
                   result.max_terminals,
                   result.at_capacity.shared_reference_ratio() * 100);
    }
    capacity_table.AddRow(capacity_row);
    sharing_table.AddRow(sharing_row);
  }
  std::printf("Fig 15 — max glitch-free terminals:\n");
  capacity_table.Print();
  std::printf("\nFig 16 — %% of buffer references previously referenced "
              "by another terminal (at capacity):\n");
  sharing_table.Print();
  return 0;
}
