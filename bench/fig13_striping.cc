// Figures 13 and 14: striped vs. non-striped video layout (§7.4).
//
// Fig 13 reports the maximum glitch-free terminals for four cases —
// striped/non-striped x Zipfian/uniform access — over the server memory
// sweep. Fig 14 reports the average disk utilization at capacity for the
// same cases, showing that non-striped layouts leave most disks idle.
// Love prefetch page replacement and elevator scheduling throughout.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("striped vs. non-striped layout",
                     "Figures 13 and 14", preset);

  struct Case {
    std::string name;
    vod::VideoPlacement placement;
    double zipf_z;
    int start_guess;
  };
  std::vector<Case> cases = {
      {"striped, zipfian", vod::VideoPlacement::kStriped, 1.0, 200},
      {"striped, uniform", vod::VideoPlacement::kStriped, 0.0, 200},
      {"non-striped, zipfian", vod::VideoPlacement::kNonStriped, 1.0, 40},
      {"non-striped, uniform", vod::VideoPlacement::kNonStriped, 0.0, 80},
  };
  const std::vector<std::int64_t> memory_mb = {128, 512, 2048, 4096};

  std::vector<std::string> headers = {"layout / access"};
  for (std::int64_t mb : memory_mb) {
    headers.push_back(std::to_string(mb) + " MB");
  }
  headers.push_back("disk util @ cap");
  vod::TextTable table(headers);

  for (const Case& c : cases) {
    std::vector<std::string> row = {c.name};
    double utilization = 0.0;
    for (std::int64_t mb : memory_mb) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kElevator;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.placement = c.placement;
      config.zipf_z = c.zipf_z;
      config.server_memory_bytes = mb * hw::kMiB;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, c.start_guess));
      row.push_back(std::to_string(result.max_terminals));
      utilization = result.at_capacity.avg_disk_utilization;
      std::fprintf(stderr, "  %s @ %lld MB -> %d (util %.2f)\n",
                   c.name.c_str(), static_cast<long long>(mb),
                   result.max_terminals, utilization);
    }
    row.push_back(vod::FmtPercent(utilization));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nFig 14 reading: at capacity the striped layout drives every disk "
      "(util -> ~100%%),\nwhile the non-striped layout overloads the disks "
      "holding popular videos and leaves\nthe rest idle (low average "
      "utilization).\n");
  return 0;
}
