// Microbenchmarks for the discrete-event simulation kernel.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "micro_common.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/random.h"
#include "sim/semaphore.h"
#include "sim/shard.h"

namespace {

using spiffi::sim::Environment;
using spiffi::sim::EventHandler;
using spiffi::sim::Process;
using spiffi::sim::ShardGroup;

// Raw calendar throughput: schedule + fire.
class NullHandler final : public EventHandler {
 public:
  void OnEvent(std::uint64_t) override {}
};

void BM_CalendarScheduleFire(benchmark::State& state) {
  spiffi::sim::Calendar calendar;
  NullHandler handler;
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      calendar.Schedule(static_cast<double>(i % 97), &handler, i);
    }
    while (!calendar.empty()) calendar.FireNext();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CalendarScheduleFire)->Arg(64)->Arg(1024)->Arg(16384);

// Cancel-heavy load: half of every batch is cancelled before it fires,
// the way wait-list timeout timers behave. Exercises the slot table's
// generation check and the lazy drop of cancelled heap entries.
void BM_CalendarScheduleCancelFire(benchmark::State& state) {
  spiffi::sim::Calendar calendar;
  NullHandler handler;
  const int batch = static_cast<int>(state.range(0));
  std::vector<spiffi::sim::EventId> ids(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      ids[i] = calendar.Schedule(static_cast<double>(i % 97), &handler, i);
    }
    for (int i = 0; i < batch; i += 2) calendar.Cancel(ids[i]);
    while (!calendar.empty()) calendar.FireNext();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CalendarScheduleCancelFire)->Arg(1024)->Arg(16384);

// Coroutine hold loop: events routed through process resumption.
Process HoldLoop(Environment* env, int holds) {
  for (int i = 0; i < holds; ++i) co_await env->Hold(0.001);
}

void BM_ProcessHoldLoop(benchmark::State& state) {
  const int processes = static_cast<int>(state.range(0));
  constexpr int kHolds = 100;
  for (auto _ : state) {
    Environment env;
    for (int p = 0; p < processes; ++p) {
      env.Spawn(HoldLoop(&env, kHolds));
    }
    env.Run();
    benchmark::DoNotOptimize(env.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * processes * kHolds);
}
BENCHMARK(BM_ProcessHoldLoop)->Arg(10)->Arg(100)->Arg(1000);

// Semaphore contention: N processes sharing one unit.
void BM_SemaphoreHandoff(benchmark::State& state) {
  const int processes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Environment env;
    spiffi::sim::Semaphore sem(&env, 1);
    for (int p = 0; p < processes; ++p) {
      env.Spawn([](Environment* e, spiffi::sim::Semaphore* s) -> Process {
        for (int i = 0; i < 20; ++i) {
          co_await s->Acquire();
          co_await e->Hold(0.001);
          s->Release();
        }
      }(&env, &sem));
    }
    env.Run();
    benchmark::DoNotOptimize(env.events_fired());
  }
  state.SetItemsProcessed(state.iterations() * processes * 20);
}
BENCHMARK(BM_SemaphoreHandoff)->Arg(10)->Arg(100);

// Cross-shard messaging under the conservative kernel: a ring of actors
// (one per shard) where each delivery immediately sends onward, at a
// given boundary-crossing density. shards=1 measures the pure in-shard
// path for the same traffic; higher counts add mailbox + staging + clock
// synchronization per crossing. Args: (shards, crossings per window).
struct RingPayload {
  ShardGroup* group;
  int dst;
  int remaining;
  double hop;
};

void RingHop(Environment* env, const void* payload);

void RingSend(const RingPayload& p, Environment* env) {
  if (p.remaining <= 0) return;
  RingPayload next = p;
  next.dst = (p.dst + 1) % p.group->shards();
  next.remaining = p.remaining - 1;
  p.group->Send(p.dst, next.dst, env->now() + p.hop, &RingHop, &next,
                sizeof(next));
}

void RingHop(Environment* env, const void* payload) {
  RingPayload p;
  std::memcpy(&p, payload, sizeof(p));
  RingSend(p, env);
}

// Same ring on one calendar: each hop is a self-scheduled event.
struct LocalHop final : EventHandler {
  Environment* env = nullptr;
  int remaining = 0;
  double hop = 0.0;
  void OnEvent(std::uint64_t) override {
    if (remaining <= 0) return;
    --remaining;
    env->ScheduleAfter(hop, this);
  }
};

void BM_ShardGroupCrossSend(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int crossings = static_cast<int>(state.range(1));
  constexpr double kHop = 1e-3;  // = lookahead: worst-case sync density
  std::vector<std::unique_ptr<Environment>> envs;
  std::vector<Environment*> raw;
  for (int s = 0; s < shards; ++s) {
    envs.push_back(std::make_unique<Environment>());
    raw.push_back(envs.back().get());
  }
  std::int64_t messages = 0;
  if (shards == 1) {
    LocalHop hop;
    hop.env = raw[0];
    hop.hop = kHop;
    double window_end = 0.0;
    for (auto _ : state) {
      hop.remaining = crossings;
      raw[0]->ScheduleAfter(kHop, &hop);
      window_end = raw[0]->now() + kHop * (crossings + 2);
      raw[0]->RunUntil(window_end);
      messages += crossings;
    }
  } else {
    // One group for the whole run: thread creation is not the thing
    // being measured. Each iteration advances one message window.
    ShardGroup group(raw, kHop);
    double window_end = 0.0;
    for (auto _ : state) {
      RingPayload p{&group, 0, crossings, kHop};
      RingSend(p, raw[0]);
      window_end = raw[0]->now() + kHop * (crossings + 2);
      group.AdvanceTo(window_end);
      messages += crossings;
    }
  }
  state.SetItemsProcessed(messages);
}
BENCHMARK(BM_ShardGroupCrossSend)
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->UseRealTime();

void BM_RngExponential(benchmark::State& state) {
  spiffi::sim::Rng rng(42);
  double sum = 0.0;
  for (auto _ : state) {
    sum += rng.Exponential(1.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void BM_CounterModeFrameDraw(benchmark::State& state) {
  std::uint64_t i = 0;
  double sum = 0.0;
  for (auto _ : state) {
    sum += spiffi::sim::ExponentialAt(7, i++, 16384.0);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterModeFrameDraw);

}  // namespace

int main(int argc, char** argv) {
  int profile_rc = spiffi::bench::MaybeRunProfileMode(argc, argv);
  if (profile_rc >= 0) return profile_rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
