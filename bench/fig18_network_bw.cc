// Figure 18: peak aggregate network bandwidth required as the system
// scales — about one compressed video bit rate (4 Mbit/s ~ 0.5 MB/s) per
// supported terminal (§7.6).

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("peak aggregate network bandwidth", "Figure 18",
                     preset);

  vod::TextTable table({"disks", "terminals", "peak bandwidth",
                        "per terminal"});
  for (int s : {1, 2, 4}) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.num_nodes = 4;
    config.disks_per_node = 4 * s;
    config.server_memory_bytes = 512LL * s * hw::kMiB;
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.disk_sched = server::DiskSchedPolicy::kRealTime;
    config.prefetch = server::PrefetchPolicy::kDelayed;
    vod::CapacitySearchOptions options =
        bench::SearchOptions(preset, 200 * s);
    options.step = preset == bench::Preset::kFull ? 5 : 5 * s;
    vod::CapacityResult result = vod::FindMaxTerminals(config, options);
    double peak = result.at_capacity.peak_network_bytes_per_sec;
    double per_terminal_mbit =
        result.max_terminals > 0
            ? peak * 8.0 / (1024.0 * 1024.0) / result.max_terminals
            : 0.0;
    table.AddRow({std::to_string(16 * s),
                  std::to_string(result.max_terminals),
                  vod::FmtBytesPerSec(peak),
                  vod::FmtDouble(per_terminal_mbit, 2) + " Mbit/s"});
    std::fprintf(stderr, "  %d disks -> peak %.1f MB/s\n", 16 * s,
                 peak / (1024.0 * 1024.0));
  }
  table.Print();
  return 0;
}
