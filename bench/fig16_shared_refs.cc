// Figure 16: percentage of buffer-pool references that request a page
// previously referenced by another terminal, vs. server memory, for the
// four popularity distributions (§7.5) at a fixed load.
//
// (fig15_access_freq also prints this at each configuration's capacity;
// this harness holds the terminal count fixed so the curves isolate the
// memory effect exactly as the paper's figure does.)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("inter-terminal sharing of buffered pages",
                     "Figure 16", preset);

  const std::vector<std::pair<std::string, double>> distributions = {
      {"uniform", 0.0}, {"zipf 0.5", 0.5}, {"zipf 1.0", 1.0},
      {"zipf 1.5", 1.5}};

  std::vector<std::string> headers = {"distribution"};
  for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
    headers.push_back(std::to_string(bench::kMemorySweepMiB[m]) + " MB");
  }
  vod::TextTable table(headers);

  constexpr int kTerminals = 180;  // near capacity, fixed across cells
  // Every (distribution, memory) cell is independent; run the full grid
  // through the parallel runner.
  std::vector<vod::SimConfig> grid;
  for (const auto& [name, z] : distributions) {
    for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kElevator;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.zipf_z = z;
      config.terminals = kTerminals;
      config.server_memory_bytes =
          bench::kMemorySweepMiB[m] * hw::kMiB;
      grid.push_back(config);
    }
  }
  vod::ParallelRunner runner(bench::JobsSetting());
  std::vector<vod::SimMetrics> results = runner.RunAll(grid);

  std::size_t cell = 0;
  for (const auto& [name, z] : distributions) {
    std::vector<std::string> row = {name};
    for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
      const vod::SimMetrics& metrics = results[cell++];
      row.push_back(vod::FmtPercent(metrics.shared_reference_ratio()));
      std::fprintf(stderr, "  %s @ %lld MB: %.1f%% shared\n", name.c_str(),
                   static_cast<long long>(bench::kMemorySweepMiB[m]),
                   metrics.shared_reference_ratio() * 100);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(%d terminals in every cell)\n", kTerminals);
  return 0;
}
