// Degraded-mode capacity: failure rate x replication degree.
//
// Not a paper figure — SPIFFI (§9) defers fault tolerance to future
// work; this harness quantifies what the deferral costs. For each
// replication degree (plain striping, then chained-declustered x2/x3
// copies) we re-run the Fig-9-style capacity search under a stochastic
// FaultPlan that takes disks down at a given rate, and report the
// maximum glitch-free terminal count plus the availability counters
// (re-routed reads, MTTR) at the highest failure rate. Plain striping
// collapses as soon as any disk fails inside the measurement window —
// every stream that touches the dead disk glitches — while the
// replicated layouts serve on through re-routed reads.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  // --smoke pins the seconds-long preset regardless of environment (the
  // CI smoke step uses it so a stray SPIFFI_BENCH_FULL cannot stall the
  // pipeline).
  bool force_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) force_smoke = true;
  }
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset =
      force_smoke ? bench::Preset::kSmoke : bench::ActivePreset();
  bench::PrintHeader("degraded-mode capacity",
                     "fault injection, beyond §9", preset);

  struct Layout {
    std::string name;
    vod::VideoPlacement placement;
    int replicas;
    int start_guess;
  };
  std::vector<Layout> layouts = {
      {"striped (no copies)", vod::VideoPlacement::kStriped, 1, 200},
      {"replicated x2", vod::VideoPlacement::kReplicatedStriped, 2, 200},
      {"replicated x3", vod::VideoPlacement::kReplicatedStriped, 3, 200},
  };

  // Per-disk MTBF (0 disables fault injection). The rates are chosen so
  // the 16-disk fleet sees roughly 0 / ~1 / ~4 failures per measurement
  // window at the fast preset; repairs take 15 s on average, well inside
  // the window, so MTTR and re-route counters are exercised too.
  struct Rate {
    std::string name;
    double disk_mtbf_sec;
  };
  std::vector<Rate> rates = {
      {"healthy", 0.0},
      {"1 fail/window", 2000.0},
      {"4 fails/window", 500.0},
  };
  if (preset == bench::Preset::kSmoke) {
    // Shorter windows need proportionally hotter failure rates.
    rates[1].disk_mtbf_sec = 500.0;
    rates[2].disk_mtbf_sec = 125.0;
    layouts.pop_back();  // x3 adds nothing qualitative to the smoke run
  }

  std::vector<std::string> headers = {"layout"};
  for (const Rate& r : rates) headers.push_back(r.name);
  headers.push_back("rerouted @ worst");
  headers.push_back("mttr @ worst");
  vod::TextTable table(headers);

  for (const Layout& layout : layouts) {
    std::vector<std::string> row = {layout.name};
    vod::SimMetrics worst;
    for (const Rate& rate : rates) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.placement = layout.placement;
      config.replica_count = layout.replicas > 1 ? layout.replicas : 2;
      config.fault_plan.disk_mtbf_sec = rate.disk_mtbf_sec;
      config.fault_plan.disk_repair_mean_sec = 15.0;
      vod::CapacitySearchOptions options =
          bench::SearchOptions(preset, layout.start_guess);
      vod::CapacityResult result = vod::FindMaxTerminals(config, options);
      row.push_back(std::to_string(result.max_terminals));
      worst = result.at_capacity;
      // Degraded reads dodge the dead disk two ways: redirected at issue
      // by fault-aware terminals, or re-routed node-to-node in flight.
      std::fprintf(stderr, "  %s, %s -> %d (rerouted %llu, mttr %.1fs)\n",
                   layout.name.c_str(), rate.name.c_str(),
                   result.max_terminals,
                   static_cast<unsigned long long>(
                       worst.requests_redirected + worst.rerouted_requests),
                   worst.mttr_sec);
    }
    row.push_back(std::to_string(worst.requests_redirected +
                                 worst.rerouted_requests));
    char mttr[32];
    std::snprintf(mttr, sizeof(mttr), "%.1f s", worst.mttr_sec);
    row.push_back(mttr);
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "\nReading: plain striping loses most of its capacity the moment "
      "disks start\nfailing (any stream crossing a dead disk glitches "
      "until the repair lands),\nwhile chained-declustered replication "
      "re-routes reads to the surviving copy\nand holds capacity near "
      "the healthy figure at the cost of %dx storage.\n",
      2);

  // --- Resilience layers on top of re-routing (ISSUE 9) ---
  //
  // Same replicated-x2 layout at the hottest failure rate, stepping up
  // through the resilience stack: admission control (refuse streams the
  // bandwidth envelope cannot carry), request timeout/retry (re-issue a
  // late block to the next live replica instead of waiting for a
  // glitch), and post-repair rebuild (resync a repaired disk from its
  // peers at a throttled rate). The capacity search measures how many
  // glitch-free terminals each stack level sustains under the same
  // fault pressure as the reroute-only baseline above.
  struct Mode {
    std::string name;
    vod::AdmissionPolicy policy;
    int retry_budget;
    double rebuild_mbps;
  };
  std::vector<Mode> modes = {
      {"reroute only", vod::AdmissionPolicy::kOff, 0, 0.0},
      {"+admission", vod::AdmissionPolicy::kStaticReservation, 0, 0.0},
      {"+retry", vod::AdmissionPolicy::kOff, 2, 0.0},
      // Rebuild throttled to ~3% of a disk's bandwidth: redundancy is
      // restored without eating the capacity retry wins back.
      {"+admission+retry+rebuild",
       vod::AdmissionPolicy::kStaticReservation, 2, 2.0},
  };

  const Rate& worst_rate = rates.back();
  vod::TextTable resilience_table(
      {"resilience", "capacity", "retries", "failovers", "rebuilds",
       "defers"});
  for (const Mode& mode : modes) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.placement = vod::VideoPlacement::kReplicatedStriped;
    config.replica_count = 2;
    config.fault_plan.disk_mtbf_sec = worst_rate.disk_mtbf_sec;
    config.fault_plan.disk_repair_mean_sec = 15.0;
    config.admission_policy = mode.policy;
    config.request_retry_budget = mode.retry_budget;
    config.rebuild_mbps = mode.rebuild_mbps;
    vod::CapacitySearchOptions options = bench::SearchOptions(preset, 200);
    vod::CapacityResult result = vod::FindMaxTerminals(config, options);
    const vod::SimMetrics& at = result.at_capacity;
    std::fprintf(stderr,
                 "  %s @ %s -> %d (retries %llu, failovers %llu, "
                 "rebuilds %llu, defers %llu)\n",
                 mode.name.c_str(), worst_rate.name.c_str(),
                 result.max_terminals,
                 static_cast<unsigned long long>(at.request_retries),
                 static_cast<unsigned long long>(at.session_failovers),
                 static_cast<unsigned long long>(at.rebuilds_completed),
                 static_cast<unsigned long long>(at.admission_defers));
    resilience_table.AddRow(
        {mode.name, std::to_string(result.max_terminals),
         std::to_string(at.request_retries),
         std::to_string(at.session_failovers),
         std::to_string(at.rebuilds_completed),
         std::to_string(at.admission_defers)});
  }
  std::printf("\nresilience stack, replicated x2 @ %s:\n",
              worst_rate.name.c_str());
  resilience_table.Print();
  std::printf(
      "\nReading: retry converts silent waits on a dead replica into "
      "immediate\nre-issues against the surviving copy, admission sheds "
      "load the degraded\nenvelope cannot carry instead of glitching "
      "every stream a little, and\nrebuild returns repaired disks to "
      "full redundancy while competing with\nservice I/O at its "
      "throttled rate.\n");
  return 0;
}
