// Shared helpers for the reproduction harnesses (one binary per paper
// table/figure).
//
// Each harness runs in a "fast" preset by default: shorter measurement
// windows and coarser capacity-search steps than the paper's
// 90%-confidence runs, chosen so the full suite completes in minutes on
// one core while preserving every qualitative shape. Set
// SPIFFI_BENCH_FULL=1 for paper-scale windows, or SPIFFI_BENCH_SMOKE=1
// for a seconds-long smoke pass.

#ifndef SPIFFI_BENCH_BENCH_COMMON_H_
#define SPIFFI_BENCH_BENCH_COMMON_H_

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/kernel_profile.h"
#include "vod/capacity.h"
#include "vod/config.h"
#include "vod/metrics.h"
#include "vod/report.h"
#include "vod/runner.h"
#include "vod/simulation.h"
#include "vod/table.h"

namespace spiffi::bench {

enum class Preset { kSmoke, kFast, kFull };

// Command-line preset override (--smoke / --full); 0 = none.
inline int& PresetOverride() {
  static int value = 0;
  return value;
}

inline Preset ActivePreset() {
  if (PresetOverride() == 1) return Preset::kSmoke;
  if (PresetOverride() == 2) return Preset::kFull;
  const char* full = std::getenv("SPIFFI_BENCH_FULL");
  if (full != nullptr && full[0] == '1') return Preset::kFull;
  const char* smoke = std::getenv("SPIFFI_BENCH_SMOKE");
  if (smoke != nullptr && smoke[0] == '1') return Preset::kSmoke;
  return Preset::kFast;
}

// --smoke / --full on any harness binary select the preset directly
// (equivalent to SPIFFI_BENCH_SMOKE=1 / SPIFFI_BENCH_FULL=1).
inline void ParsePreset(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) PresetOverride() = 1;
    if (std::strcmp(argv[i], "--full") == 0) PresetOverride() = 2;
  }
}

inline const char* PresetName(Preset preset) {
  switch (preset) {
    case Preset::kSmoke: return "smoke";
    case Preset::kFast: return "fast";
    case Preset::kFull: return "full";
  }
  return "?";
}

// Paper base configuration (§7): 4 processors x 4 disks, 64 one-hour
// videos, 512 KB stripe, Zipfian z=1, 2 MB terminals, with run-control
// windows set from the active preset.
inline vod::SimConfig BaseConfig(Preset preset) {
  vod::SimConfig config;
  switch (preset) {
    case Preset::kSmoke:
      config.start_window_sec = 20.0;
      config.warmup_seconds = 30.0;
      config.measure_seconds = 30.0;
      break;
    case Preset::kFast:
      config.start_window_sec = 60.0;
      config.warmup_seconds = 100.0;
      config.measure_seconds = 120.0;
      break;
    case Preset::kFull:
      config.start_window_sec = 60.0;
      config.warmup_seconds = 240.0;
      config.measure_seconds = 600.0;
      break;
  }
  return config;
}

// --- Parallel execution (--jobs mode) ---
//
// Every capacity search and glitch curve in the harnesses runs through
// the parallel experiment runner. The job count comes from --jobs N (or
// --jobs=N), else the SPIFFI_JOBS environment variable, else
// hardware_concurrency; --jobs 1 forces the serial path. Results are
// identical for every value (see docs/parallel_runs.md).

// The raw setting: 0 = default (vod::DefaultJobs()), n >= 1 = exactly n.
inline int& JobsSetting() {
  static int jobs = 0;
  return jobs;
}

// The resolved worker count the harness will actually use.
inline int ActiveJobs() { return vod::ResolveJobs(JobsSetting()); }

inline void ParseJobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      JobsSetting() = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      JobsSetting() = std::atoi(argv[i] + 7);
    }
  }
}

inline vod::CapacitySearchOptions SearchOptions(Preset preset,
                                                int start_guess = 200) {
  vod::CapacitySearchOptions options;
  options.start_guess = start_guess;
  options.max_terminals = 2000;
  options.jobs = JobsSetting();
  switch (preset) {
    case Preset::kSmoke:
      options.step = 20;
      options.replications = 1;
      break;
    case Preset::kFast:
      options.step = 5;
      options.replications = 1;
      break;
    case Preset::kFull:
      options.step = 5;
      options.replications = 3;
      break;
  }
  return options;
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        Preset preset) {
  std::printf("=== %s (%s) — preset: %s ===\n", experiment, paper_ref,
              PresetName(preset));
}

// Memory sweep used by Figs 11-16 (aggregate server memory, MB).
inline const std::int64_t kMemorySweepMiB[] = {128, 256, 512,
                                               1024, 2048, 4096};
inline constexpr int kMemorySweepPoints = 6;

// --- Kernel self-profiling (--profile mode) ---
//
// With profiling enabled, every Simulation::Run() executed by the
// harness reports its kernel self-profile through the vod run observer;
// at process exit the collected profiles — per run and in total — are
// written as JSON to bench_profile.json (or the --profile=PATH target).
// With --jobs > 1 runs finish on ParallelRunner worker threads, so the
// collector is mutex-guarded, and the report distinguishes the summed
// per-run wall time from the elapsed wall time of the whole harness —
// their ratio is the achieved parallel speedup.

struct ProfileCollector {
  bool enabled = false;         // --profile: kernel self-profile JSON
  bool report_enabled = false;  // --report: JSONL run reports
  std::string harness = "bench";
  std::string path = "bench_profile.json";
  std::string report_path = "bench_report.jsonl";
  std::mutex mutex;  // runs arrive concurrently from worker threads
  std::vector<vod::RunProfile> runs;
  std::chrono::steady_clock::time_point start;
};

inline ProfileCollector& Profiler() {
  static ProfileCollector collector;
  return collector;
}

// Both --profile and --report feed off the same run-observer stream;
// install the collector exactly once no matter which (or both) is on.
inline void EnsureRunCollector() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  Profiler().start = std::chrono::steady_clock::now();
  vod::SetRunObserver([](const vod::RunProfile& profile) {
    ProfileCollector& sink = Profiler();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.runs.push_back(profile);
  });
}

inline void WriteProfileReport() {
  ProfileCollector& collector = Profiler();
  if (!collector.enabled) return;
  std::ofstream out(collector.path);
  if (!out) {
    std::fprintf(stderr, "profile: cannot write %s\n",
                 collector.path.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(collector.mutex);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - collector.start)
                       .count();
  double wall = 0.0;
  std::uint64_t events = 0;
  for (const vod::RunProfile& run : collector.runs) {
    wall += run.wall_seconds;
    events += run.kernel.events_fired;
  }
  double speedup = elapsed > 0.0 ? wall / elapsed : 0.0;
  out << "{\n  \"harness\": \"" << collector.harness << "\",\n"
      << "  \"jobs\": " << ActiveJobs() << ",\n"
      << "  \"runs\": " << collector.runs.size() << ",\n"
      << "  \"total_wall_seconds\": " << wall << ",\n"
      << "  \"elapsed_wall_seconds\": " << elapsed << ",\n"
      << "  \"parallel_speedup\": " << speedup << ",\n"
      << "  \"total_events\": " << events << ",\n"
      << "  \"events_per_sec\": " << (wall > 0.0 ? events / wall : 0.0)
      << ",\n  \"per_run\": [";
  for (std::size_t i = 0; i < collector.runs.size(); ++i) {
    const vod::RunProfile& run = collector.runs[i];
    if (i > 0) out << ",";
    out << "\n    ";
    obs::WriteKernelProfileJson(
        out, collector.harness + "/run" + std::to_string(i), run.kernel,
        run.wall_seconds);
  }
  out << "\n  ]\n}\n";
  std::printf(
      "profile: wrote %s (%zu runs, %.2fs run wall / %.2fs elapsed, "
      "%.2fx parallel, %.0f events/s)\n",
      collector.path.c_str(), collector.runs.size(), wall, elapsed,
      speedup, wall > 0.0 ? events / wall : 0.0);
}

inline void EnableProfile(const std::string& harness,
                          const std::string& path) {
  ProfileCollector& collector = Profiler();
  collector.enabled = true;
  collector.harness = harness;
  if (!path.empty()) collector.path = path;
  EnsureRunCollector();
  std::atexit(WriteProfileReport);
}

// Writes one vod::RunReport JSON object per collected run (JSONL).
inline void WriteRunReports() {
  ProfileCollector& collector = Profiler();
  if (!collector.report_enabled) return;
  std::ofstream out(collector.report_path);
  if (!out) {
    std::fprintf(stderr, "report: cannot write %s\n",
                 collector.report_path.c_str());
    return;
  }
  std::lock_guard<std::mutex> lock(collector.mutex);
  for (std::size_t i = 0; i < collector.runs.size(); ++i) {
    const vod::RunProfile& run = collector.runs[i];
    vod::RunReport report;
    report.label = collector.harness + "/run" + std::to_string(i);
    report.config_summary = run.config_summary;
    report.config_digest = run.config_digest;
    report.seed = run.seed;
    report.terminals = run.terminals;
    report.sim_seconds = run.sim_seconds;
    report.wall_seconds = run.wall_seconds;
    report.events_per_sec =
        run.wall_seconds > 0.0
            ? static_cast<double>(run.kernel.events_fired) / run.wall_seconds
            : 0.0;
    report.metrics = run.metrics;
    vod::WriteRunReportJson(out, report);
  }
  std::printf("report: wrote %s (%zu runs)\n", collector.report_path.c_str(),
              collector.runs.size());
}

inline void EnableReport(const std::string& harness,
                         const std::string& path) {
  ProfileCollector& collector = Profiler();
  collector.report_enabled = true;
  collector.harness = harness;
  if (!path.empty()) collector.report_path = path;
  EnsureRunCollector();
  std::atexit(WriteRunReports);
}

// --- Live fleet progress (--progress mode) ---
//
// A detached printer thread samples ParallelRunner::SnapshotAllRunners()
// every few seconds and emits a one-line fleet status to stderr:
// completed/submitted runs, simulated-time completion fraction, event
// throughput, and an ETA extrapolated from the sim-seconds completed per
// wall second so far. Costs nothing when off; the runs themselves are
// untouched either way.

struct ProgressPrinter {
  bool enabled = false;
  double interval_sec = 2.0;
  std::atomic<bool> stop{false};
  std::thread thread;
  std::chrono::steady_clock::time_point start;
};

inline ProgressPrinter& Progress() {
  static ProgressPrinter printer;
  return printer;
}

inline void ProgressThreadMain() {
  ProgressPrinter& printer = Progress();
  std::uint64_t last_events = 0;
  auto last_sample = printer.start;
  auto next_print = printer.start +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(printer.interval_sec));
  while (!printer.stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto now = std::chrono::steady_clock::now();
    if (now < next_print) continue;
    next_print = now + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(printer.interval_sec));
    vod::ParallelRunner::FleetProgress fleet =
        vod::ParallelRunner::SnapshotAllRunners();
    double elapsed =
        std::chrono::duration<double>(now - printer.start).count();
    double tick = std::chrono::duration<double>(now - last_sample).count();
    double rate = tick > 0.0 && fleet.events_fired >= last_events
                      ? static_cast<double>(fleet.events_fired - last_events) /
                            tick
                      : 0.0;
    last_events = fleet.events_fired;
    last_sample = now;
    double fraction = fleet.target_sim_seconds > 0.0
                          ? fleet.done_sim_seconds / fleet.target_sim_seconds
                          : 0.0;
    double eta = fraction > 0.0 && fraction < 1.0
                     ? elapsed * (1.0 - fraction) / fraction
                     : 0.0;
    std::fprintf(
        stderr,
        "[progress] %llu/%llu runs done, %llu running, %.1f%% sim-time, "
        "%.2fM ev/s, elapsed %.0fs, ETA %.0fs\n",
        static_cast<unsigned long long>(fleet.completed),
        static_cast<unsigned long long>(fleet.submitted),
        static_cast<unsigned long long>(fleet.running), fraction * 100.0,
        rate / 1e6, elapsed, eta);
  }
}

inline void StopProgress() {
  ProgressPrinter& printer = Progress();
  if (!printer.enabled) return;
  printer.stop.store(true, std::memory_order_relaxed);
  if (printer.thread.joinable()) printer.thread.join();
}

inline void EnableProgress(double interval_sec) {
  ProgressPrinter& printer = Progress();
  if (printer.enabled) return;
  printer.enabled = true;
  if (interval_sec > 0.0) printer.interval_sec = interval_sec;
  printer.start = std::chrono::steady_clock::now();
  printer.thread = std::thread(ProgressThreadMain);
  std::atexit(StopProgress);
}

// Call first thing in main: consumes a --profile[=PATH] argument (also
// honours SPIFFI_BENCH_PROFILE=1) and turns on run profiling. The
// harness name is taken from the binary name.
inline void MaybeEnableProfile(int argc, char** argv) {
  std::string harness = "bench";
  if (argc > 0 && argv[0] != nullptr) {
    harness = argv[0];
    std::size_t slash = harness.find_last_of('/');
    if (slash != std::string::npos) harness = harness.substr(slash + 1);
  }
  std::string path;
  bool enabled = false;
  const char* env = std::getenv("SPIFFI_BENCH_PROFILE");
  if (env != nullptr && env[0] == '1') enabled = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      enabled = true;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      enabled = true;
      path = argv[i] + 10;
    }
  }
  if (enabled) EnableProfile(harness, path);
}

// Shared with MaybeEnableProfile: the harness label from argv[0].
inline std::string HarnessName(int argc, char** argv) {
  std::string harness = "bench";
  if (argc > 0 && argv[0] != nullptr) {
    harness = argv[0];
    std::size_t slash = harness.find_last_of('/');
    if (slash != std::string::npos) harness = harness.substr(slash + 1);
  }
  return harness;
}

// Consumes --report[=PATH] (also SPIFFI_BENCH_REPORT=1): every run the
// harness executes leaves a machine-readable report line in the JSONL
// file, rendered by tools/run_report.py.
inline void MaybeEnableReport(int argc, char** argv) {
  std::string path;
  bool enabled = false;
  const char* env = std::getenv("SPIFFI_BENCH_REPORT");
  if (env != nullptr && env[0] == '1') enabled = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0) {
      enabled = true;
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      enabled = true;
      path = argv[i] + 9;
    }
  }
  if (enabled) EnableReport(HarnessName(argc, argv), path);
}

// Consumes --progress[=SEC] (also SPIFFI_BENCH_PROGRESS=1): starts the
// fleet status printer with the given interval (default 2s).
inline void MaybeEnableProgress(int argc, char** argv) {
  double interval = 0.0;
  bool enabled = false;
  const char* env = std::getenv("SPIFFI_BENCH_PROGRESS");
  if (env != nullptr && env[0] == '1') enabled = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--progress") == 0) {
      enabled = true;
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      enabled = true;
      interval = std::atof(argv[i] + 11);
    }
  }
  if (enabled) EnableProgress(interval);
}

// Call first thing in main: parses --smoke/--full, --jobs, --profile,
// --report and --progress.
inline void InitHarness(int argc, char** argv) {
  ParsePreset(argc, argv);
  ParseJobs(argc, argv);
  MaybeEnableProfile(argc, argv);
  MaybeEnableReport(argc, argv);
  MaybeEnableProgress(argc, argv);
}

}  // namespace spiffi::bench

#endif  // SPIFFI_BENCH_BENCH_COMMON_H_
