// Shared helpers for the reproduction harnesses (one binary per paper
// table/figure).
//
// Each harness runs in a "fast" preset by default: shorter measurement
// windows and coarser capacity-search steps than the paper's
// 90%-confidence runs, chosen so the full suite completes in minutes on
// one core while preserving every qualitative shape. Set
// SPIFFI_BENCH_FULL=1 for paper-scale windows, or SPIFFI_BENCH_SMOKE=1
// for a seconds-long smoke pass.

#ifndef SPIFFI_BENCH_BENCH_COMMON_H_
#define SPIFFI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "vod/capacity.h"
#include "vod/config.h"
#include "vod/metrics.h"
#include "vod/simulation.h"
#include "vod/table.h"

namespace spiffi::bench {

enum class Preset { kSmoke, kFast, kFull };

inline Preset ActivePreset() {
  const char* full = std::getenv("SPIFFI_BENCH_FULL");
  if (full != nullptr && full[0] == '1') return Preset::kFull;
  const char* smoke = std::getenv("SPIFFI_BENCH_SMOKE");
  if (smoke != nullptr && smoke[0] == '1') return Preset::kSmoke;
  return Preset::kFast;
}

inline const char* PresetName(Preset preset) {
  switch (preset) {
    case Preset::kSmoke: return "smoke";
    case Preset::kFast: return "fast";
    case Preset::kFull: return "full";
  }
  return "?";
}

// Paper base configuration (§7): 4 processors x 4 disks, 64 one-hour
// videos, 512 KB stripe, Zipfian z=1, 2 MB terminals, with run-control
// windows set from the active preset.
inline vod::SimConfig BaseConfig(Preset preset) {
  vod::SimConfig config;
  switch (preset) {
    case Preset::kSmoke:
      config.start_window_sec = 20.0;
      config.warmup_seconds = 30.0;
      config.measure_seconds = 30.0;
      break;
    case Preset::kFast:
      config.start_window_sec = 60.0;
      config.warmup_seconds = 100.0;
      config.measure_seconds = 120.0;
      break;
    case Preset::kFull:
      config.start_window_sec = 60.0;
      config.warmup_seconds = 240.0;
      config.measure_seconds = 600.0;
      break;
  }
  return config;
}

inline vod::CapacitySearchOptions SearchOptions(Preset preset,
                                                int start_guess = 200) {
  vod::CapacitySearchOptions options;
  options.start_guess = start_guess;
  options.max_terminals = 2000;
  switch (preset) {
    case Preset::kSmoke:
      options.step = 20;
      options.replications = 1;
      break;
    case Preset::kFast:
      options.step = 5;
      options.replications = 1;
      break;
    case Preset::kFull:
      options.step = 5;
      options.replications = 3;
      break;
  }
  return options;
}

inline void PrintHeader(const char* experiment, const char* paper_ref,
                        Preset preset) {
  std::printf("=== %s (%s) — preset: %s ===\n", experiment, paper_ref,
              PresetName(preset));
}

// Memory sweep used by Figs 11-16 (aggregate server memory, MB).
inline const std::int64_t kMemorySweepMiB[] = {128, 256, 512,
                                               1024, 2048, 4096};
inline constexpr int kMemorySweepPoints = 6;

}  // namespace spiffi::bench

#endif  // SPIFFI_BENCH_BENCH_COMMON_H_
