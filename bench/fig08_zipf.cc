// Figure 8: the Zipfian video-popularity distribution for 64 videos at
// z = 0 (uniform), 0.5, 1.0, and 1.5 — access probability by rank.

#include <cstdio>

#include "bench_common.h"
#include "mpeg/zipf.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using spiffi::mpeg::ZipfDistribution;
  using spiffi::vod::FmtDouble;
  using spiffi::vod::TextTable;

  spiffi::bench::PrintHeader("Zipfian distribution", "Figure 8",
                             spiffi::bench::ActivePreset());

  constexpr int kVideos = 64;
  ZipfDistribution uniform(kVideos, 0.0);
  ZipfDistribution z05(kVideos, 0.5);
  ZipfDistribution z10(kVideos, 1.0);
  ZipfDistribution z15(kVideos, 1.5);

  TextTable table({"video rank", "uniform", "z=0.5", "z=1.0", "z=1.5"});
  for (int rank : {0, 1, 2, 3, 4, 7, 15, 31, 63}) {
    table.AddRow({std::to_string(rank + 1),
                  FmtDouble(uniform.Probability(rank), 4),
                  FmtDouble(z05.Probability(rank), 4),
                  FmtDouble(z10.Probability(rank), 4),
                  FmtDouble(z15.Probability(rank), 4)});
  }
  table.Print();

  // Head mass: how much of the workload the top 8 videos draw.
  double top8[4] = {0, 0, 0, 0};
  const ZipfDistribution* dists[4] = {&uniform, &z05, &z10, &z15};
  for (int d = 0; d < 4; ++d) {
    for (int r = 0; r < 8; ++r) top8[d] += dists[d]->Probability(r);
  }
  std::printf("\ntop-8 share: uniform %.1f%%, z=0.5 %.1f%%, z=1.0 %.1f%%, "
              "z=1.5 %.1f%%\n",
              top8[0] * 100, top8[1] * 100, top8[2] * 100, top8[3] * 100);
  return 0;
}
