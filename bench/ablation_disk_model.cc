// Ablation: disk-model details. How much do the on-drive read-ahead
// cache and the terminal buffer size actually matter?
//
//  * Cache contexts: the drive's read-ahead only helps when the disk has
//    idle time and the next request continues a sequential stream — near
//    saturation the benefit should shrink.
//  * Terminal memory: the paper's scaleup discussion (§7.6) shows the
//    elevator needs more terminal buffering as service-time variance
//    grows; this sweep isolates the terminal-memory axis at 16 disks.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("disk read-ahead cache and terminal memory",
                     "ablation", preset);

  std::printf("-- read-ahead cache context size --\n");
  vod::TextTable cache_table({"cache context", "max terminals"});
  for (std::int64_t kb : {0LL, 64LL, 128LL, 256LL}) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.server_memory_bytes = 512 * hw::kMiB;
    config.disk.cache_context_bytes = kb * hw::kKiB;
    vod::CapacityResult result = vod::FindMaxTerminals(
        config, bench::SearchOptions(preset, 200));
    cache_table.AddRow({std::to_string(kb) + " KB",
                        std::to_string(result.max_terminals)});
    std::fprintf(stderr, "  cache %lld KB -> %d\n",
                 static_cast<long long>(kb), result.max_terminals);
  }
  cache_table.Print();

  std::printf("\n-- terminal memory (elevator, 512 KB stripe) --\n");
  vod::TextTable term_table({"terminal memory", "max terminals"});
  for (double mb : {1.5, 2.0, 2.5, 3.0, 4.0}) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.server_memory_bytes = 512 * hw::kMiB;
    config.terminal_memory_bytes =
        static_cast<std::int64_t>(mb * static_cast<double>(hw::kMiB));
    vod::CapacityResult result = vod::FindMaxTerminals(
        config, bench::SearchOptions(preset, 200));
    term_table.AddRow({vod::FmtDouble(mb, 1) + " MB",
                       std::to_string(result.max_terminals)});
    std::fprintf(stderr, "  terminal %.1f MB -> %d\n", mb,
                 result.max_terminals);
  }
  term_table.Print();
  std::printf("\nMore terminal buffering tolerates longer worst-case "
              "service times and lifts the\nglitch-free capacity — the "
              "effect behind the elevator's poor scaleup in Table 2.\n");
  return 0;
}
