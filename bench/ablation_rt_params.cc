// Ablation: real-time scheduler parameters. §7.2: "We explored a wide
// variety of settings for these parameters [number of priority classes,
// priority spacing] and found that regardless of how they were set there
// was little variation in the performance of the system."

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("real-time priority classes x spacing",
                     "ablation (§7.2 claim)", preset);

  const std::vector<int> classes = {1, 2, 3, 5};
  const std::vector<double> spacings = {1.0, 2.0, 4.0, 8.0};

  std::vector<std::string> headers = {"classes \\ spacing"};
  for (double s : spacings) {
    headers.push_back(vod::FmtDouble(s, 0) + " s");
  }
  vod::TextTable table(headers);

  for (int c : classes) {
    std::vector<std::string> row = {std::to_string(c)};
    for (double s : spacings) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kRealTime;
      config.realtime_classes = c;
      config.realtime_spacing_sec = s;
      config.prefetch = server::PrefetchPolicy::kRealTime;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 220));
      row.push_back(std::to_string(result.max_terminals));
      std::fprintf(stderr, "  %d classes, %.0f s -> %d\n", c, s,
                   result.max_terminals);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nAs the paper observed, the setting barely matters: one "
              "class degenerates to the\nelevator and more classes only "
              "refine the urgency ordering slightly.\n");
  return 0;
}
