// Table 3: disk cost per supported terminal for three ways of holding the
// same 64-video library — 16 x 9 GB, 32 x 4.5 GB, or 64 x 2.2 GB drives
// (§7.6, 1995 prices). Minimizing $/MB does not minimize $/terminal:
// more spindles means more concurrent streams.

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("disk cost per terminal", "Table 3", preset);

  struct Option {
    int disks;             // total drives
    double capacity_gb;    // per drive
    int cost_per_disk;     // 1995 US$
  };
  std::vector<Option> options = {
      {16, 9.0, 4000}, {32, 4.5, 2500}, {64, 2.2, 1500}};

  vod::TextTable table({"disks", "capacity", "cost/disk", "cost/MB",
                        "total cost", "terminals", "cost/terminal"});

  for (const Option& option : options) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.num_nodes = 4;
    config.disks_per_node = option.disks / 4;
    // The library stays 64 videos in every case.
    config.videos_per_disk = 64 / option.disks;
    config.disk.capacity_bytes = static_cast<std::int64_t>(
        option.capacity_gb * static_cast<double>(hw::kGiB));
    config.server_memory_bytes =
        512LL * (option.disks / 16) * hw::kMiB;
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.disk_sched = server::DiskSchedPolicy::kRealTime;
    config.prefetch = server::PrefetchPolicy::kDelayed;
    vod::CapacitySearchOptions search =
        bench::SearchOptions(preset, 200 * option.disks / 16);
    search.step = preset == bench::Preset::kFull
                      ? 5
                      : 5 * option.disks / 16;
    vod::CapacityResult result = vod::FindMaxTerminals(config, search);

    int total_cost = option.disks * option.cost_per_disk;
    double cost_per_mb =
        static_cast<double>(option.cost_per_disk) /
        (option.capacity_gb * 1024.0);
    double cost_per_terminal =
        result.max_terminals > 0
            ? static_cast<double>(total_cost) / result.max_terminals
            : 0.0;
    table.AddRow({std::to_string(option.disks),
                  vod::FmtDouble(option.capacity_gb, 1) + " GB",
                  "$" + std::to_string(option.cost_per_disk),
                  "$" + vod::FmtDouble(cost_per_mb, 2),
                  "$" + std::to_string(total_cost),
                  std::to_string(result.max_terminals),
                  "$" + vod::FmtDouble(cost_per_terminal, 0)});
    std::fprintf(stderr, "  %d disks -> %d terminals\n", option.disks,
                 result.max_terminals);
  }
  table.Print();
  return 0;
}
