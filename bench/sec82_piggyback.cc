// Section 8.2: piggybacking terminals — delaying the start of a popular
// movie (playing commercials) so several subscribers share one stream.
// "Experiments show that a 5 minute delay more than doubles the number of
// terminals that may be supported glitch-free."

#include <cstdio>
#include <string>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("piggybacking terminals", "Section 8.2", preset);

  vod::TextTable table({"batching window", "max terminals", "vs. none"});
  int base_capacity = 0;
  for (double window : {0.0, 60.0, 300.0}) {
    vod::SimConfig config = bench::BaseConfig(preset);
    config.disk_sched = server::DiskSchedPolicy::kElevator;
    config.replacement = server::ReplacementPolicy::kLovePrefetch;
    config.server_memory_bytes = 512 * hw::kMiB;
    config.piggyback_window_sec = window;
    // Piggybacked terminals watch from the beginning, so the steady-state
    // position spread comes from staggering the starts over many minutes
    // (not from random initial positions). The warmup covers the spread
    // plus the batching delay. A simultaneous-start workload would let
    // nearly every terminal join one of ~64 groups and wildly overstate
    // the benefit.
    config.start_window_sec = preset == bench::Preset::kSmoke
                                  ? 120.0
                                  : 900.0;
    config.warmup_seconds = config.start_window_sec + window + 60.0;
    vod::CapacitySearchOptions options = bench::SearchOptions(
        preset, window > 0.0 ? 400 : 200);
    options.step = preset == bench::Preset::kFull ? 5 : 25;
    // The search ceiling scales with the batching window: a 5-minute
    // window more than doubles capacity, and a fixed 1200-terminal cap
    // used to silently clip exactly the rows the experiment is about.
    options.max_terminals =
        1200 + static_cast<int>(window / 60.0) * 600;
    vod::CapacityResult result = vod::FindMaxTerminals(config, options);
    bool saturated =
        result.max_terminals >= options.max_terminals - options.step;
    if (window == 0.0) base_capacity = result.max_terminals;
    double factor = base_capacity > 0
                        ? static_cast<double>(result.max_terminals) /
                              base_capacity
                        : 0.0;
    std::string capacity_cell = std::to_string(result.max_terminals);
    if (saturated) capacity_cell += " (cap)";
    table.AddRow({vod::FmtDouble(window / 60.0, 0) + " min",
                  capacity_cell, "x" + vod::FmtDouble(factor, 2)});
    std::fprintf(stderr, "  window %.0fs -> %d%s\n", window,
                 result.max_terminals,
                 saturated ? " (search ceiling reached)" : "");
  }
  table.Print();
  return 0;
}
