// Figure 14: average disk utilization, striped vs. non-striped layouts,
// as the offered load (number of terminals) grows (§7.4).
//
// With striping every disk shares the load and utilization climbs toward
// 100%; without striping the disks holding popular videos saturate while
// the others idle, capping average utilization far below 100%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("average disk utilization vs. load", "Figure 14",
                     preset);

  struct Case {
    std::string name;
    vod::VideoPlacement placement;
    double zipf_z;
  };
  std::vector<Case> cases = {
      {"striped, zipfian", vod::VideoPlacement::kStriped, 1.0},
      {"striped, uniform", vod::VideoPlacement::kStriped, 0.0},
      {"non-striped, zipfian", vod::VideoPlacement::kNonStriped, 1.0},
      {"non-striped, uniform", vod::VideoPlacement::kNonStriped, 0.0},
  };
  const std::vector<int> terminals = {30, 60, 120, 180, 240};

  std::vector<std::string> headers = {"layout / access"};
  for (int n : terminals) {
    headers.push_back(std::to_string(n) + " terms");
  }
  vod::TextTable table(headers);

  // All cells are independent runs; fan the whole grid across workers.
  std::vector<vod::SimConfig> grid;
  for (const Case& c : cases) {
    for (int n : terminals) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kElevator;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.placement = c.placement;
      config.zipf_z = c.zipf_z;
      config.server_memory_bytes = 512 * hw::kMiB;
      config.terminals = n;
      grid.push_back(config);
    }
  }
  vod::ParallelRunner runner(bench::JobsSetting());
  std::vector<vod::SimMetrics> results = runner.RunAll(grid);

  std::size_t cell = 0;
  for (const Case& c : cases) {
    std::vector<std::string> row = {c.name};
    for (int n : terminals) {
      const vod::SimMetrics& m = results[cell++];
      row.push_back(vod::FmtPercent(m.avg_disk_utilization, 0) +
                    (m.glitches > 0 ? "*" : ""));
      std::fprintf(stderr, "  %s @ %d terminals: util %.2f (min %.2f max "
                           "%.2f) glitches %llu\n",
                   c.name.c_str(), n, m.avg_disk_utilization,
                   m.min_disk_utilization, m.max_disk_utilization,
                   static_cast<unsigned long long>(m.glitches));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n(* = the run was no longer glitch-free at this load)\n");
  return 0;
}
