// Figure 11: reducing server memory requirements under elevator disk
// scheduling — global LRU vs. love prefetch page replacement as the
// aggregate server memory shrinks from 4 GB to 128 MB (§7.3).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("server memory vs. page replacement (elevator)",
                     "Figure 11", preset);

  struct Policy {
    std::string name;
    server::ReplacementPolicy replacement;
  };
  std::vector<Policy> policies = {
      {"global LRU", server::ReplacementPolicy::kGlobalLru},
      {"love prefetch", server::ReplacementPolicy::kLovePrefetch},
  };

  vod::TextTable table({"server memory", "global LRU", "love prefetch"});
  std::vector<std::vector<int>> results(
      bench::kMemorySweepPoints, std::vector<int>(policies.size()));
  for (std::size_t p = 0; p < policies.size(); ++p) {
    for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kElevator;
      config.replacement = policies[p].replacement;
      config.server_memory_bytes =
          bench::kMemorySweepMiB[m] * hw::kMiB;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 200));
      results[m][p] = result.max_terminals;
      std::fprintf(stderr, "  %s @ %lld MB -> %d\n",
                   policies[p].name.c_str(),
                   static_cast<long long>(bench::kMemorySweepMiB[m]),
                   result.max_terminals);
    }
  }
  for (int m = 0; m < bench::kMemorySweepPoints; ++m) {
    table.AddRow({std::to_string(bench::kMemorySweepMiB[m]) + " MB",
                  std::to_string(results[m][0]),
                  std::to_string(results[m][1])});
  }
  table.Print();
  return 0;
}
