// Microbenchmarks for the server buffer pool's replacement hot paths.
//
// Each benchmark runs under both replacement policies (arg 1: 0 =
// Global-LRU, 1 = love-prefetch) at 1k and 16k pages (arg 0), covering
// the four operations the simulation hammers per block reference:
// Lookup (hash probe), Touch (intrusive chain move), and the
// Allocate→Complete→evict recycle cycle.

#include <benchmark/benchmark.h>

#include "micro_common.h"
#include "server/buffer_pool.h"
#include "sim/environment.h"

namespace {

using spiffi::server::BufferPool;
using spiffi::server::PageKey;
using spiffi::server::ReplacementPolicy;

ReplacementPolicy PolicyArg(const benchmark::State& state) {
  return state.range(1) == 0 ? ReplacementPolicy::kGlobalLru
                             : ReplacementPolicy::kLovePrefetch;
}

void SetPolicyLabel(benchmark::State& state) {
  state.SetLabel(state.range(1) == 0 ? "global-lru" : "love-prefetch");
}

// Fills every page of the pool with a distinct valid block.
void FillPool(BufferPool* pool, std::int64_t pages) {
  for (std::int64_t i = 0; i < pages; ++i) {
    BufferPool::Page* page =
        pool->Allocate(PageKey{0, i}, /*for_prefetch=*/false);
    pool->Complete(page);
    pool->Touch(page, /*terminal=*/static_cast<int>(i % 7));
    pool->Unpin(page);
  }
}

void BM_PoolLookupHit(benchmark::State& state) {
  const std::int64_t pages = state.range(0);
  spiffi::sim::Environment env;
  BufferPool pool(&env, pages, PolicyArg(state));
  FillPool(&pool, pages);
  std::int64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Lookup(PageKey{0, block}));
    block = (block + 1) % pages;
  }
  state.SetItemsProcessed(state.iterations());
  SetPolicyLabel(state);
}
BENCHMARK(BM_PoolLookupHit)
    ->ArgsProduct({{1024, 16384}, {0, 1}});

void BM_PoolTouch(benchmark::State& state) {
  const std::int64_t pages = state.range(0);
  spiffi::sim::Environment env;
  BufferPool pool(&env, pages, PolicyArg(state));
  FillPool(&pool, pages);
  // Touch in a stride pattern so the moved page is rarely already at the
  // MRU end (the no-op fast case).
  std::int64_t block = 0;
  const std::int64_t stride = 37;  // coprime with both pool sizes
  for (auto _ : state) {
    BufferPool::Page* page = pool.Lookup(PageKey{0, block});
    pool.Touch(page, /*terminal=*/3);
    block = (block + stride) % pages;
  }
  state.SetItemsProcessed(state.iterations());
  SetPolicyLabel(state);
}
BENCHMARK(BM_PoolTouch)
    ->ArgsProduct({{1024, 16384}, {0, 1}});

// Steady-state page recycling: every Allocate must evict the LRU page,
// then the I/O completes and the page is referenced once.
void BM_PoolAllocateEvict(benchmark::State& state) {
  const std::int64_t pages = state.range(0);
  spiffi::sim::Environment env;
  BufferPool pool(&env, pages, PolicyArg(state));
  FillPool(&pool, pages);
  std::int64_t next_block = pages;  // every key misses: pure eviction
  for (auto _ : state) {
    BufferPool::Page* page =
        pool.Allocate(PageKey{0, next_block}, /*for_prefetch=*/false);
    pool.Complete(page);
    pool.Touch(page, /*terminal=*/1);
    pool.Unpin(page);
    ++next_block;
  }
  state.SetItemsProcessed(state.iterations());
  SetPolicyLabel(state);
}
BENCHMARK(BM_PoolAllocateEvict)
    ->ArgsProduct({{1024, 16384}, {0, 1}});

// Love-prefetch lifecycle: prefetched pages complete onto the prefetched
// chain, get referenced (chain hop to referenced), and are evicted.
void BM_PoolPrefetchLifecycle(benchmark::State& state) {
  const std::int64_t pages = state.range(0);
  spiffi::sim::Environment env;
  BufferPool pool(&env, pages, ReplacementPolicy::kLovePrefetch);
  FillPool(&pool, pages);
  std::int64_t next_block = pages;
  for (auto _ : state) {
    BufferPool::Page* page =
        pool.Allocate(PageKey{0, next_block}, /*for_prefetch=*/true);
    pool.Complete(page);       // lands on the prefetched chain
    pool.Touch(page, /*terminal=*/2);  // hops to the referenced chain
    pool.Unpin(page);
    ++next_block;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("love-prefetch");
}
BENCHMARK(BM_PoolPrefetchLifecycle)->Arg(1024)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  int profile_rc = spiffi::bench::MaybeRunProfileMode(argc, argv);
  if (profile_rc >= 0) return profile_rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
