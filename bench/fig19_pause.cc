// Figure 19: the effect of pause/resume (§8.1) — each terminal pauses
// each video on average twice for an average of two minutes; capacity is
// essentially unaffected.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("pause and restart", "Figure 19", preset);

  vod::TextTable table({"server memory", "no pausing", "with pausing"});
  for (std::int64_t mb : {128LL, 512LL, 2048LL}) {
    int capacities[2] = {0, 0};
    for (int pause = 0; pause < 2; ++pause) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = server::DiskSchedPolicy::kElevator;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.server_memory_bytes = mb * hw::kMiB;
      config.pause_enabled = pause == 1;
      config.pauses_per_video_mean = 2.0;
      config.pause_duration_mean_sec = 120.0;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 200));
      capacities[pause] = result.max_terminals;
      std::fprintf(stderr, "  %lld MB pause=%d -> %d\n",
                   static_cast<long long>(mb), pause,
                   result.max_terminals);
    }
    table.AddRow({std::to_string(mb) + " MB",
                  std::to_string(capacities[0]),
                  std::to_string(capacities[1])});
  }
  table.Print();
  std::printf("\nPausing terminals stop consuming while their buffers "
              "refill, so capacity is\nessentially unchanged (slightly "
              "higher if anything, since paused terminals\nplace no "
              "load).\n");
  return 0;
}
