// Figure 10: maximum glitch-free terminals for each disk scheduling
// algorithm over stripe sizes 128-1024 KB.
//
// Configuration per §7.2: 16 disks, 4 GB server memory (so memory never
// limits performance), global LRU, 2 MB terminals. Real-time scheduling
// is shown with 2 and 3 priority classes at 4 s spacing and uses
// real-time prefetching; the non-real-time algorithms use the limited
// prefetch setting.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("disk scheduling algorithms x stripe sizes",
                     "Figure 10", preset);

  struct Algorithm {
    std::string name;
    server::DiskSchedPolicy policy;
    int rt_classes = 3;
  };
  std::vector<Algorithm> algorithms = {
      {"elevator", server::DiskSchedPolicy::kElevator},
      {"gss (1 group)", server::DiskSchedPolicy::kGss},
      {"round-robin", server::DiskSchedPolicy::kRoundRobin},
      {"real-time (2,4s)", server::DiskSchedPolicy::kRealTime, 2},
      {"real-time (3,4s)", server::DiskSchedPolicy::kRealTime, 3},
  };
  const std::vector<std::int64_t> stripe_kb = {128, 256, 512, 1024};

  vod::TextTable table({"algorithm", "128 KB", "256 KB", "512 KB",
                        "1024 KB"});
  for (const Algorithm& alg : algorithms) {
    std::vector<std::string> row = {alg.name};
    for (std::int64_t kb : stripe_kb) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = alg.policy;
      config.gss_groups = 1;
      config.realtime_classes = alg.rt_classes;
      config.stripe_bytes = kb * 1024;
      if (alg.policy == server::DiskSchedPolicy::kRealTime) {
        config.prefetch = server::PrefetchPolicy::kRealTime;
      }
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, /*start_guess=*/200));
      row.push_back(std::to_string(result.max_terminals));
      std::fprintf(stderr, "  %s @ %lld KB -> %d\n", alg.name.c_str(),
                   static_cast<long long>(kb), result.max_terminals);
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
