// Stream-sharing service tier: batching + patching + pinned prefix
// caching. Extends the §8.2 piggybacking experiment: the capacity gain
// from sharing grows with the request rate (shorter videos => more
// start requests per terminal-hour), because a larger fraction of
// arrivals lands inside an open batching window or patch window. The
// sweep holds hardware fixed and varies the video length under the
// video-rental Zipf skew (z = 0.271), reporting glitch-free capacity
// with sharing off and on — the gain is super-linear in request rate.

#include <cstdio>
#include <string>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("stream-sharing service tier", "Section 8.2 extended",
                     preset);

  // Batching window + patch window + pinned prefix cache, all modest:
  // one minute of commercials, 45 s of catch-up unicast, a quarter of
  // the pool pinned on popular prefixes.
  constexpr double kBatchWindowSec = 60.0;
  constexpr double kPatchWindowSec = 45.0;
  constexpr double kPrefixFraction = 0.25;

  vod::TextTable table({"video len", "req/term/hr", "capacity off",
                        "capacity shared", "gain"});
  bool smoke = preset == bench::Preset::kSmoke;
  // Shorter videos = higher request rate. Smoke trims the sweep to one
  // point so CI finishes in seconds.
  std::vector<double> video_seconds =
      smoke ? std::vector<double>{600.0}
            : std::vector<double>{1800.0, 1200.0, 600.0};
  for (double seconds : video_seconds) {
    vod::SimConfig base = bench::BaseConfig(preset);
    base.disk_sched = server::DiskSchedPolicy::kElevator;
    base.replacement = server::ReplacementPolicy::kLovePrefetch;
    base.server_memory_bytes = 512 * hw::kMiB;
    base.video_seconds = seconds;
    base.zipf_z = 0.271;  // video-rental popularity skew
    // Shared-mode terminals watch from the beginning; the steady-state
    // position spread must come from staggered starts (see
    // sec82_piggyback.cc), and the warmup must cover the spread plus
    // the batching delay.
    base.start_window_sec = smoke ? 120.0 : 900.0;
    base.warmup_seconds =
        base.start_window_sec + kBatchWindowSec + 60.0;

    vod::CapacitySearchOptions options =
        bench::SearchOptions(preset, 200);
    options.step = preset == bench::Preset::kFull ? 5 : 25;
    options.max_terminals = 2400;

    vod::SimConfig off = base;
    // Sharing off must still stagger starts so both columns measure the
    // same workload; only the service tier differs.
    off.random_initial_position = false;
    vod::CapacityResult off_result = vod::FindMaxTerminals(off, options);

    vod::SimConfig shared = base;
    shared.piggyback_window_sec = kBatchWindowSec;
    shared.patch_window_sec = kPatchWindowSec;
    shared.prefix_cache_fraction = kPrefixFraction;
    vod::CapacityResult shared_result =
        vod::FindMaxTerminals(shared, options);
    bool saturated =
        shared_result.max_terminals >= options.max_terminals - options.step;

    double requests_per_hour = 3600.0 / seconds;
    double gain = off_result.max_terminals > 0
                      ? static_cast<double>(shared_result.max_terminals) /
                            off_result.max_terminals
                      : 0.0;
    std::string shared_cell = std::to_string(shared_result.max_terminals);
    if (saturated) shared_cell += " (cap)";
    table.AddRow({vod::FmtDouble(seconds / 60.0, 0) + " min",
                  vod::FmtDouble(requests_per_hour, 1),
                  std::to_string(off_result.max_terminals), shared_cell,
                  "x" + vod::FmtDouble(gain, 2)});
    std::fprintf(stderr, "  %.0f s videos: off %d, shared %d%s\n", seconds,
                 off_result.max_terminals, shared_result.max_terminals,
                 saturated ? " (search ceiling reached)" : "");
  }
  table.Print();
  return 0;
}
