// Ablation: prefetching aggressiveness (§5.2.3). The number of prefetch
// worker processes per disk bounds how many prefetch reads can be
// outstanding. The paper's claim: non-real-time scheduling is *hurt* by
// aggressive prefetching (it cannot tell urgent from background work),
// while real-time scheduling benefits from it.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  spiffi::bench::InitHarness(argc, argv);
  using namespace spiffi;
  bench::Preset preset = bench::ActivePreset();
  bench::PrintHeader("prefetch aggressiveness (workers per disk)",
                     "ablation (§5.2.3 claim)", preset);

  const std::vector<int> workers = {1, 4, 16, 64};
  std::vector<std::string> headers = {"scheduler"};
  headers.push_back("no prefetch");
  for (int w : workers) headers.push_back(std::to_string(w));
  vod::TextTable table(headers);

  for (auto [name, policy, prefetch_trigger] :
       {std::tuple{"elevator (on-reference trigger)",
                   server::DiskSchedPolicy::kElevator,
                   vod::SimConfig::TriggerMode::kOnReference},
        std::tuple{"real-time (on-reference trigger)",
                   server::DiskSchedPolicy::kRealTime,
                   vod::SimConfig::TriggerMode::kOnReference}}) {
    std::vector<std::string> row = {name};
    // Baseline without prefetching.
    {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = policy;
      config.server_memory_bytes = 512 * hw::kMiB;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.prefetch = server::PrefetchPolicy::kNone;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 200));
      row.push_back(std::to_string(result.max_terminals));
      std::fprintf(stderr, "  %s, none -> %d\n", name,
                   result.max_terminals);
    }
    for (int w : workers) {
      vod::SimConfig config = bench::BaseConfig(preset);
      config.disk_sched = policy;
      config.server_memory_bytes = 512 * hw::kMiB;
      config.replacement = server::ReplacementPolicy::kLovePrefetch;
      config.prefetch = policy == server::DiskSchedPolicy::kRealTime
                            ? server::PrefetchPolicy::kRealTime
                            : server::PrefetchPolicy::kFifo;
      config.prefetch_workers = w;
      config.prefetch_trigger = prefetch_trigger;
      vod::CapacityResult result = vod::FindMaxTerminals(
          config, bench::SearchOptions(preset, 200));
      row.push_back(std::to_string(result.max_terminals));
      std::fprintf(stderr, "  %s, %d workers -> %d\n", name, w,
                   result.max_terminals);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nElevator cannot distinguish a prefetch from an urgent "
              "demand read, so aggressive\nprefetching clogs its queue; "
              "the real-time scheduler parks prefetches in the\nlowest "
              "priority class and converts aggressiveness into hits.\n");
  return 0;
}
